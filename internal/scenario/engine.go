// Package scenario is the slice-quantized run engine behind every netsim
// harness and the composable-scenario runner. It owns the pieces the four
// original harnesses each re-wired by hand — the coordinator loop (traffic
// slices, then a bounded drain, then a final boundary), telemetry threading
// (one unified series row per slice, flight traces, events), and governor
// actuation (slice-grain observe, deterministic pacer actuation) — while
// pluggable stressors and a per-run kernel supply the harness-specific
// behaviour through a small hook surface.
//
// Determinism: every control decision (stressor hooks, governor observe,
// telemetry rows) runs on the coordinating goroutine; kernels may fan
// disjoint per-engine work out over the sweep worker pool, but must fold
// results back in engine order. A run is then a pure function of its seeds
// and configuration — byte-identical at any -j.
package scenario

import (
	"fmt"

	"vrpower/internal/governor"
	"vrpower/internal/power"
)

// SliceStats is what a kernel measured over one executed slice; the Engine
// turns it into the unified telemetry row and the governor's sample.
type SliceStats struct {
	// Util is the per-engine slice-local stage utilization feeding the
	// power model.
	Util []float64
	// Delivered is the number of packets delivered during this slice (the
	// throughput column's numerator).
	Delivered int64
	// Backlog is the queued-arrival depth at slice end.
	Backlog int
	// Scrubs and Updates are the active control-plane operation counts
	// (down/reloading engines, armed update batches).
	Scrubs, Updates int
	// Recoveries is the cumulative journaled-recovery count (replays +
	// rollbacks) through this slice; DegradedVNs the networks currently
	// watchdog-degraded. Both stay zero without the chaos stressor.
	Recoveries  int
	DegradedVNs int
	// Avail flags each network as in service; nil means all up.
	Avail []bool
	// Reloading flags engines mid-reload for the governor's sample (their
	// utilization spike is transient); nil when none are.
	Reloading []bool
}

// A Kernel executes the data-plane cycles of one slice. Exactly one kernel
// drives a run; stressors modulate it through shared state.
type Kernel interface {
	// RunSlice executes cycles [b, b+n). live is false during the drain
	// (no new arrivals). The returned stats feed the slice's telemetry row
	// and governor sample.
	RunSlice(b, n int64, live bool) (SliceStats, error)
	// Outstanding reports in-flight work (queued arrivals, pending
	// lookups) that must complete before the run can end.
	Outstanding() bool
}

// DecisionKernel is implemented by kernels that need the governor's fresh
// decision pushed into per-engine state between slices (the hitless-update
// actuation model); the Engine calls it after each governed observe.
type DecisionKernel interface {
	Kernel
	ApplyDecision(d governor.Decision)
}

// Engine is one slice-quantized run: configuration plus the plumbing every
// harness shares. Zero value is not usable; fill the struct and call Run.
type Engine struct {
	// Cycles is the offered-traffic window; SliceCycles the control-plane
	// quantum. When Truncate is set the last slice is clipped to Cycles
	// (the open-loop load harness's semantics); otherwise the window is
	// rounded up to whole slices.
	Cycles      int64
	SliceCycles int64
	Truncate    bool
	// MaxDrainSlices bounds the post-traffic drain in which stressors and
	// the kernel finish outstanding work. Zero means no drain at all.
	MaxDrainSlices int

	// K, Design, FmaxMHz describe the plant for power/throughput telemetry
	// and the governor.
	K       int
	Design  power.SystemDesign
	FmaxMHz float64

	// Tel is the run's telemetry bundle; nil defaults to NoTelemetry.
	Tel *Telemetry
	// Gov is the run's governor actuation, built by NewGovRun; nil runs
	// ungoverned.
	Gov *GovRun

	Stressors []Stressor
	Kernel    Kernel

	// NoSeries suppresses series initialisation and slice rows (the batch
	// Forward path, which has no slice clock).
	NoSeries bool

	// TrafficCycles and DrainCycles are filled in by Run.
	TrafficCycles int64
	DrainCycles   int64
}

// observe closes one slice: telemetry row from the kernel's stats, governor
// observe + actuation for the next slice.
func (e *Engine) observe(b, n int64, st SliceStats) {
	powerW, capW, rung := SlicePower(e.Design, st.Util), 0.0, 0.0
	if e.Gov != nil {
		d := e.Gov.Observe(b, n, st.Util, st.Reloading)
		powerW, capW, rung = d.PowerW, d.CapW, float64(d.ObservedRung)
		if dk, ok := e.Kernel.(DecisionKernel); ok {
			dk.ApplyDecision(d)
		}
	}
	if e.NoSeries {
		return
	}
	e.Tel.AppendSlice(e.K, b, powerW, SliceGbps(e.FmaxMHz, st.Delivered, n), st.Backlog,
		st.Scrubs, st.Updates, st.Recoveries, st.DegradedVNs, capW, rung, st.Avail)
}

// boundary runs every stressor's Boundary hook in registration order.
func (e *Engine) boundary(b int64, draining bool) error {
	for _, s := range e.Stressors {
		if err := s.Boundary(b, draining); err != nil {
			return fmt.Errorf("scenario: %s boundary at %d: %w", s.Name(), b, err)
		}
	}
	return nil
}

// preSlice runs every stressor's PreSlice hook in registration order.
func (e *Engine) preSlice(b, n int64, draining bool) error {
	for _, s := range e.Stressors {
		if err := s.PreSlice(b, n, draining); err != nil {
			return fmt.Errorf("scenario: %s pre-slice at %d: %w", s.Name(), b, err)
		}
	}
	return nil
}

// outstanding reports whether any stressor or the kernel still has work.
func (e *Engine) outstanding() bool {
	if e.Kernel.Outstanding() {
		return true
	}
	for _, s := range e.Stressors {
		if s.Outstanding() {
			return true
		}
	}
	return false
}

// Run drives the full lifecycle: traffic slices, bounded drain, final
// boundary. See the package comment for the per-slice hook order.
func (e *Engine) Run() error {
	if e.Cycles <= 0 {
		return fmt.Errorf("scenario: run of %d cycles, want > 0", e.Cycles)
	}
	if e.SliceCycles < 1 {
		return fmt.Errorf("scenario: slice of %d cycles, want >= 1", e.SliceCycles)
	}
	if e.Kernel == nil {
		return fmt.Errorf("scenario: no kernel")
	}
	if e.Tel == nil {
		e.Tel = NoTelemetry
	}
	S := e.SliceCycles
	slices := (e.Cycles + S - 1) / S
	e.TrafficCycles = slices * S
	if e.Truncate {
		e.TrafficCycles = e.Cycles
	}
	if !e.NoSeries {
		e.Tel.InitSeries(e.K)
	}

	for t := int64(0); t < slices; t++ {
		b := t * S
		n := S
		if e.Truncate && b+n > e.Cycles {
			n = e.Cycles - b
		}
		if err := e.boundary(b, false); err != nil {
			return err
		}
		if err := e.preSlice(b, n, false); err != nil {
			return err
		}
		st, err := e.Kernel.RunSlice(b, n, true)
		if err != nil {
			return err
		}
		e.observe(b, n, st)
	}

	// Drain: no new traffic, but stressors and the kernel keep working
	// until everything outstanding lands (or the bound trips — e.g. a dead
	// engine that will never come back).
	drained := int64(0)
	for d := 0; d < e.MaxDrainSlices && e.outstanding(); d++ {
		b := e.TrafficCycles + drained
		if err := e.boundary(b, true); err != nil {
			return err
		}
		if err := e.preSlice(b, S, true); err != nil {
			return err
		}
		st, err := e.Kernel.RunSlice(b, S, false)
		if err != nil {
			return err
		}
		e.observe(b, S, st)
		drained += S
	}
	e.DrainCycles = drained
	// A final boundary lands work that completed exactly at the bound.
	return e.boundary(e.TrafficCycles+drained, true)
}
