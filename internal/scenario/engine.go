// Package scenario is the slice-quantized run engine behind every netsim
// harness and the composable-scenario runner. It owns the pieces the four
// original harnesses each re-wired by hand — the coordinator loop (traffic
// slices, then a bounded drain, then a final boundary), telemetry threading
// (one unified series row per slice, flight traces, events), and governor
// actuation (slice-grain observe, deterministic pacer actuation) — while
// pluggable stressors and a per-run kernel supply the harness-specific
// behaviour through a small hook surface.
//
// Determinism: every control decision (stressor hooks, governor observe,
// telemetry rows) runs on the coordinating goroutine; kernels may fan
// disjoint per-engine work out over the sweep worker pool, but must fold
// results back in engine order. A run is then a pure function of its seeds
// and configuration — byte-identical at any -j.
package scenario

import (
	"fmt"

	"vrpower/internal/energy"
	"vrpower/internal/fpga"
	"vrpower/internal/governor"
	"vrpower/internal/power"
)

// SliceStats is what a kernel measured over one executed slice; the Engine
// turns it into the unified telemetry row and the governor's sample.
type SliceStats struct {
	// Util is the per-engine slice-local stage utilization feeding the
	// power model.
	Util []float64
	// Delivered is the number of packets delivered during this slice (the
	// throughput column's numerator).
	Delivered int64
	// Backlog is the queued-arrival depth at slice end.
	Backlog int
	// Scrubs and Updates are the active control-plane operation counts
	// (down/reloading engines, armed update batches).
	Scrubs, Updates int
	// Recoveries is the cumulative journaled-recovery count (replays +
	// rollbacks) through this slice; DegradedVNs the networks currently
	// watchdog-degraded. Both stay zero without the chaos stressor.
	Recoveries  int
	DegradedVNs int
	// Avail flags each network as in service; nil means all up.
	Avail []bool
	// Reloading flags engines mid-reload for the governor's sample (their
	// utilization spike is transient); nil when none are.
	Reloading []bool
}

// A Kernel executes the data-plane cycles of one slice. Exactly one kernel
// drives a run; stressors modulate it through shared state.
type Kernel interface {
	// RunSlice executes cycles [b, b+n). live is false during the drain
	// (no new arrivals). The returned stats feed the slice's telemetry row
	// and governor sample.
	RunSlice(b, n int64, live bool) (SliceStats, error)
	// Outstanding reports in-flight work (queued arrivals, pending
	// lookups) that must complete before the run can end.
	Outstanding() bool
}

// DecisionKernel is implemented by kernels that need the governor's fresh
// decision pushed into per-engine state between slices (the hitless-update
// actuation model); the Engine calls it after each governed observe.
type DecisionKernel interface {
	Kernel
	ApplyDecision(d governor.Decision)
}

// Engine is one slice-quantized run: configuration plus the plumbing every
// harness shares. Zero value is not usable; fill the struct and call Run.
type Engine struct {
	// Cycles is the offered-traffic window; SliceCycles the control-plane
	// quantum. When Truncate is set the last slice is clipped to Cycles
	// (the open-loop load harness's semantics); otherwise the window is
	// rounded up to whole slices.
	Cycles      int64
	SliceCycles int64
	Truncate    bool
	// MaxDrainSlices bounds the post-traffic drain in which stressors and
	// the kernel finish outstanding work. Zero means no drain at all.
	MaxDrainSlices int

	// K, Design, FmaxMHz describe the plant for power/throughput telemetry
	// and the governor.
	K       int
	Design  power.SystemDesign
	FmaxMHz float64

	// Tel is the run's telemetry bundle; nil defaults to NoTelemetry.
	Tel *Telemetry
	// Gov is the run's governor actuation, built by NewGovRun; nil runs
	// ungoverned.
	Gov *GovRun
	// Energy is the run's event-energy meter; nil runs unmetered. The
	// engine owns the time-dependent half of the accounting: static-power
	// integration per slice at the active DVFS tier, and the transition
	// charge whenever the governor moves the ladder. Kernels and stressors
	// charge their own events (lookups, bubbles, sweeps, reload writes).
	Energy *energy.Meter

	Stressors []Stressor
	Kernel    Kernel

	// NoSeries suppresses series initialisation and slice rows (the batch
	// Forward path, which has no slice clock).
	NoSeries bool

	// TrafficCycles and DrainCycles are filled in by Run.
	TrafficCycles int64
	DrainCycles   int64

	// Clock-tier cursor for energy integration: the DVFS fraction the slice
	// just executed ran at, and the ladder rung that chose it. Updated by
	// observe from each governed decision; ungoverned runs stay at full rate.
	curFreqFrac float64
	curRung     int
	// Cumulative-energy cursors turning the meter's totals into per-slice
	// series deltas.
	prevDynFJ    int64
	prevStaticFJ int64
}

// observe closes one slice: telemetry row from the kernel's stats, governor
// observe + actuation for the next slice, and the slice's energy accounting
// (static integration at the tier the slice ran at, transition charges when
// the ladder moved, per-slice deltas for the series columns).
func (e *Engine) observe(b, n int64, st SliceStats) {
	powerW, capW, rung := SlicePower(e.Design, st.Util), 0.0, 0.0
	var dec *governor.Decision
	if e.Gov != nil {
		d := e.Gov.Observe(b, n, st.Util, st.Reloading)
		powerW, capW, rung = d.PowerW, d.CapW, float64(d.ObservedRung)
		if dk, ok := e.Kernel.(DecisionKernel); ok {
			dk.ApplyDecision(d)
		}
		dec = &d
	}
	dynJ, staticJ, jPerBit := 0.0, 0.0, 0.0
	if e.Energy != nil {
		// The slice just executed ran at the tier the PREVIOUS decision
		// chose (full rate before any decision): integrate leakage over its
		// stretched wall time, then advance the cursor to the fresh
		// actuation and charge a full-pipe flush per engine if it moved.
		frac := e.curFreqFrac
		if frac == 0 {
			frac = 1
		}
		e.Energy.StaticSlice(n, frac)
		if dec != nil {
			if dec.RungIndex != e.curRung {
				for eng := range e.Energy.Model().Engines {
					e.Energy.Transition(eng, e.engineLowVN(eng))
				}
				e.curRung = dec.RungIndex
			}
			e.curFreqFrac = dec.Rung.FreqFrac
		}
		dynFJ, staticFJ := e.Energy.DynTotalFJ(), e.Energy.StaticTotalFJ()
		dDyn, dStatic := dynFJ-e.prevDynFJ, staticFJ-e.prevStaticFJ
		e.prevDynFJ, e.prevStaticFJ = dynFJ, staticFJ
		dynJ = float64(dDyn) / 1e15
		staticJ = float64(dStatic) / 1e15
		if st.Delivered > 0 {
			jPerBit = float64(dDyn+dStatic) / 1e15 /
				(float64(st.Delivered) * fpga.MinPacketBytes * 8)
		}
	}
	if e.NoSeries {
		return
	}
	e.Tel.AppendSlice(e.K, b, powerW, SliceGbps(e.FmaxMHz, st.Delivered, n), st.Backlog,
		st.Scrubs, st.Updates, st.Recoveries, st.DegradedVNs, capW, rung,
		dynJ, staticJ, jPerBit, st.Avail)
}

// engineLowVN maps an engine to the lowest VNID it serves — the VNID
// control-plane energy on that engine is attributed to. Per-engine schemes
// serve network e from engine e; the merged scheme's single engine charges
// network 0.
func (e *Engine) engineLowVN(eng int) int {
	if eng < e.K {
		return eng
	}
	return 0
}

// boundary runs every stressor's Boundary hook in registration order.
func (e *Engine) boundary(b int64, draining bool) error {
	for _, s := range e.Stressors {
		if err := s.Boundary(b, draining); err != nil {
			return fmt.Errorf("scenario: %s boundary at %d: %w", s.Name(), b, err)
		}
	}
	return nil
}

// preSlice runs every stressor's PreSlice hook in registration order.
func (e *Engine) preSlice(b, n int64, draining bool) error {
	for _, s := range e.Stressors {
		if err := s.PreSlice(b, n, draining); err != nil {
			return fmt.Errorf("scenario: %s pre-slice at %d: %w", s.Name(), b, err)
		}
	}
	return nil
}

// outstanding reports whether any stressor or the kernel still has work.
func (e *Engine) outstanding() bool {
	if e.Kernel.Outstanding() {
		return true
	}
	for _, s := range e.Stressors {
		if s.Outstanding() {
			return true
		}
	}
	return false
}

// Run drives the full lifecycle: traffic slices, bounded drain, final
// boundary. See the package comment for the per-slice hook order.
func (e *Engine) Run() error {
	if e.Cycles <= 0 {
		return fmt.Errorf("scenario: run of %d cycles, want > 0", e.Cycles)
	}
	if e.SliceCycles < 1 {
		return fmt.Errorf("scenario: slice of %d cycles, want >= 1", e.SliceCycles)
	}
	if e.Kernel == nil {
		return fmt.Errorf("scenario: no kernel")
	}
	if e.Tel == nil {
		e.Tel = NoTelemetry
	}
	S := e.SliceCycles
	slices := (e.Cycles + S - 1) / S
	e.TrafficCycles = slices * S
	if e.Truncate {
		e.TrafficCycles = e.Cycles
	}
	if !e.NoSeries {
		e.Tel.InitSeries(e.K)
	}

	for t := int64(0); t < slices; t++ {
		b := t * S
		n := S
		if e.Truncate && b+n > e.Cycles {
			n = e.Cycles - b
		}
		if err := e.boundary(b, false); err != nil {
			return err
		}
		if err := e.preSlice(b, n, false); err != nil {
			return err
		}
		st, err := e.Kernel.RunSlice(b, n, true)
		if err != nil {
			return err
		}
		e.observe(b, n, st)
	}

	// Drain: no new traffic, but stressors and the kernel keep working
	// until everything outstanding lands (or the bound trips — e.g. a dead
	// engine that will never come back).
	drained := int64(0)
	for d := 0; d < e.MaxDrainSlices && e.outstanding(); d++ {
		b := e.TrafficCycles + drained
		if err := e.boundary(b, true); err != nil {
			return err
		}
		if err := e.preSlice(b, S, true); err != nil {
			return err
		}
		st, err := e.Kernel.RunSlice(b, S, false)
		if err != nil {
			return err
		}
		e.observe(b, S, st)
		drained += S
	}
	e.DrainCycles = drained
	// A final boundary lands work that completed exactly at the bound.
	return e.boundary(e.TrafficCycles+drained, true)
}
