package scenario

import (
	"fmt"
	"strings"
	"testing"

	"vrpower/internal/governor"
	"vrpower/internal/obs"
)

// logKernel records the engine's calls so tests can assert the hook order
// and slice geometry.
type logKernel struct {
	log         *[]string
	outstanding int // drain slices to request
	stats       SliceStats
}

func (k *logKernel) RunSlice(b, n int64, live bool) (SliceStats, error) {
	*k.log = append(*k.log, fmt.Sprintf("run[%d,+%d,live=%v]", b, n, live))
	if !live && k.outstanding > 0 {
		k.outstanding--
	}
	return k.stats, nil
}

func (k *logKernel) Outstanding() bool { return k.outstanding > 0 }

// logStressor records its hooks into the shared log.
type logStressor struct {
	name string
	log  *[]string
	fail bool
}

func (s *logStressor) Name() string { return s.name }
func (s *logStressor) Boundary(b int64, draining bool) error {
	*s.log = append(*s.log, fmt.Sprintf("%s.boundary[%d,drain=%v]", s.name, b, draining))
	if s.fail {
		return fmt.Errorf("boom")
	}
	return nil
}
func (s *logStressor) PreSlice(b, n int64, draining bool) error {
	*s.log = append(*s.log, fmt.Sprintf("%s.preslice[%d,+%d,drain=%v]", s.name, b, n, draining))
	return nil
}
func (s *logStressor) Outstanding() bool { return false }

func TestEngineHookOrder(t *testing.T) {
	var log []string
	k := &logKernel{log: &log, outstanding: 1}
	e := Engine{
		Cycles: 20, SliceCycles: 10, MaxDrainSlices: 4, NoSeries: true,
		Stressors: []Stressor{&logStressor{name: "a", log: &log}, &logStressor{name: "b", log: &log}},
		Kernel:    k,
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"a.boundary[0,drain=false]", "b.boundary[0,drain=false]",
		"a.preslice[0,+10,drain=false]", "b.preslice[0,+10,drain=false]",
		"run[0,+10,live=true]",
		"a.boundary[10,drain=false]", "b.boundary[10,drain=false]",
		"a.preslice[10,+10,drain=false]", "b.preslice[10,+10,drain=false]",
		"run[10,+10,live=true]",
		// One drain slice (the kernel reported outstanding work once).
		"a.boundary[20,drain=true]", "b.boundary[20,drain=true]",
		"a.preslice[20,+10,drain=true]", "b.preslice[20,+10,drain=true]",
		"run[20,+10,live=false]",
		// Final boundary after the drain loop exits.
		"a.boundary[30,drain=true]", "b.boundary[30,drain=true]",
	}
	if len(log) != len(want) {
		t.Fatalf("got %d events, want %d:\n%s", len(log), len(want), strings.Join(log, "\n"))
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("event %d = %q, want %q\nfull log:\n%s", i, log[i], want[i], strings.Join(log, "\n"))
		}
	}
	if e.TrafficCycles != 20 || e.DrainCycles != 10 {
		t.Fatalf("traffic %d drain %d, want 20/10", e.TrafficCycles, e.DrainCycles)
	}
}

func TestEngineRoundsUpToWholeSlices(t *testing.T) {
	var log []string
	k := &logKernel{log: &log}
	e := Engine{Cycles: 25, SliceCycles: 10, NoSeries: true, Kernel: k}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.TrafficCycles != 30 {
		t.Fatalf("traffic cycles %d, want 30 (rounded up)", e.TrafficCycles)
	}
	if got := (*k.log)[len(*k.log)-1]; got != "run[20,+10,live=true]" {
		t.Fatalf("last slice %q", got)
	}
}

func TestEngineTruncateClipsLastSlice(t *testing.T) {
	var log []string
	k := &logKernel{log: &log}
	e := Engine{Cycles: 25, SliceCycles: 10, Truncate: true, NoSeries: true, Kernel: k}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.TrafficCycles != 25 {
		t.Fatalf("traffic cycles %d, want 25 (truncated)", e.TrafficCycles)
	}
	if got := (*k.log)[len(*k.log)-1]; got != "run[20,+5,live=true]" {
		t.Fatalf("last slice %q, want clipped to +5", got)
	}
}

func TestEngineDrainBound(t *testing.T) {
	var log []string
	k := &logKernel{log: &log, outstanding: 100} // never finishes on its own
	e := Engine{Cycles: 10, SliceCycles: 10, MaxDrainSlices: 3, NoSeries: true, Kernel: k}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.DrainCycles != 30 {
		t.Fatalf("drain cycles %d, want 30 (3-slice bound)", e.DrainCycles)
	}
}

func TestEngineValidation(t *testing.T) {
	var log []string
	k := &logKernel{log: &log}
	cases := []struct {
		e    Engine
		want string
	}{
		{Engine{Cycles: 0, SliceCycles: 10, Kernel: k}, "want > 0"},
		{Engine{Cycles: 10, SliceCycles: 0, Kernel: k}, "want >= 1"},
		{Engine{Cycles: 10, SliceCycles: 10}, "no kernel"},
	}
	for _, c := range cases {
		err := c.e.Run()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Run() = %v, want substring %q", err, c.want)
		}
	}
}

func TestEngineStressorErrorNamesStressor(t *testing.T) {
	var log []string
	e := Engine{
		Cycles: 10, SliceCycles: 10, NoSeries: true,
		Stressors: []Stressor{&logStressor{name: "churn", log: &log, fail: true}},
		Kernel:    &logKernel{log: &log},
	}
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "churn boundary at 0") {
		t.Fatalf("error %v, want stressor name and boundary cycle", err)
	}
}

// decisionKernel records ApplyDecision pushes.
type decisionKernel struct {
	logKernel
	applied int
}

func (k *decisionKernel) ApplyDecision(governor.Decision) { k.applied++ }

func TestEngineSeriesAndGovernor(t *testing.T) {
	tel := &Telemetry{Series: obs.NewTimeSeries()}
	var log []string
	k := &decisionKernel{logKernel: logKernel{log: &log, stats: SliceStats{Util: []float64{0.5}}}}
	e := Engine{
		Cycles: 2048, SliceCycles: 1024, K: 2, Tel: tel,
		Kernel: k,
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if rows := tel.Series.Len(); rows != 2 {
		t.Fatalf("series rows %d, want 2 (one per slice)", rows)
	}
	if cols := tel.Series.Columns(); len(cols) != len(SeriesColumns(2)) {
		t.Fatalf("series columns %v, want the unified schema %v", cols, SeriesColumns(2))
	}
	if k.applied != 0 {
		t.Fatal("ApplyDecision called on an ungoverned run")
	}
}
