package scenario

// Fuzz harness for the spec parser (go test -fuzz=FuzzParse). The parser is
// the one component fed operator-typed strings, so it must never panic and
// must uphold two properties on every input: (1) a spec that parses is
// internally consistent (validated fields in range), and (2) a parsed
// spec's Stressors list matches its populated sections.

import (
	"strings"
	"testing"
)

func FuzzParse(f *testing.F) {
	// Seed corpus: every key, every load shape, every chaos kind, plus the
	// malformed shapes the table tests pin.
	seeds := []string{
		"load=saturate",
		"load=const:0.5",
		"load=surge:0.3:0.9:100:200",
		"load=burst:0.6:128:0.25",
		"load=ramp:0:1",
		"faults=seu:1e-9,kill=1@5000",
		"churn=100x50:vn=2",
		"load=surge,faults=seu:2e-9,kill=1@3000,churn=6x32,power-cap=38,cycles=16384,queue=32,seed=11",
		"load=const:0.4,faults=seu:1e-9,churn=10x32,chaos=crash:3+stall:2+torn:1+falsepos:1",
		"chaos=crash:1",
		"load=saturate,",
		",,",
		"load=const:0.5,load=saturate",
		"power-cap=45,power-cap-device=12,slice=512",
		"kill=0@50000",
		"=",
		"a=b=c",
		"load=const:0.4,fleet=4:spare=1,chaos=devcrash:1+brownout:2+flaky:1",
		"fleet=2",
		"fleet=2:spare=0,power-cap=40",
		"fleet=0",
		"fleet=2:x=1",
		"fleet=2,chaos=devcrash:3",
		"fleet=2,faults=seu:1e-9",
		"chaos=devcrash:1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := Parse(spec)
		if err != nil {
			// Errors must carry the package prefix so they read well in
			// CLI output.
			if !strings.HasPrefix(err.Error(), "scenario: ") {
				t.Fatalf("Parse(%q) error without prefix: %v", spec, err)
			}
			return
		}
		// A spec that parses must be runnable: validated fields in range.
		if s.Cycles < 1 || s.Slice < 1 || s.Queue < 1 {
			t.Fatalf("Parse(%q) accepted out-of-range dims: %+v", spec, s)
		}
		if s.SEURate < 0 || s.SEURate >= 1 {
			t.Fatalf("Parse(%q) accepted SEU rate %g", spec, s.SEURate)
		}
		if s.Kill != nil && (s.Kill.Engine < 0 || s.Kill.Cycle < 0 || s.Kill.Cycle >= s.Cycles) {
			t.Fatalf("Parse(%q) accepted kill %+v with cycles %d", spec, s.Kill, s.Cycles)
		}
		if s.Churn != nil && (s.Churn.Batches < 1 || s.Churn.Ops < 1) {
			t.Fatalf("Parse(%q) accepted churn %+v", spec, s.Churn)
		}
		if s.Chaos != nil {
			if s.Chaos.Total() < 1 {
				t.Fatalf("Parse(%q) accepted empty chaos", spec)
			}
			if s.Chaos.Crashes > 0 && s.Churn == nil {
				t.Fatalf("Parse(%q) accepted crashes without churn", spec)
			}
			if s.Chaos.Stalls+s.Chaos.Torn+s.Chaos.FalsePositives > 0 && s.SEURate <= 0 && s.Kill == nil {
				t.Fatalf("Parse(%q) accepted scrub chaos without faults/kill", spec)
			}
			if s.Chaos.DeviceTotal() > 0 && s.Fleet == nil {
				t.Fatalf("Parse(%q) accepted device chaos without fleet", spec)
			}
		}
		if s.Fleet != nil {
			if s.Fleet.Devices < 1 || s.Fleet.Spares < 0 {
				t.Fatalf("Parse(%q) accepted fleet %+v", spec, s.Fleet)
			}
			if s.Chaos != nil {
				if s.Chaos.CtrlTotal() > 0 {
					t.Fatalf("Parse(%q) accepted control-plane chaos on a fleet run", spec)
				}
				if s.Chaos.DeviceCrashes > s.Fleet.Devices {
					t.Fatalf("Parse(%q) accepted %d crashes over %d devices", spec, s.Chaos.DeviceCrashes, s.Fleet.Devices)
				}
			}
			if s.SEURate > 0 || s.Kill != nil || s.Churn != nil {
				t.Fatalf("Parse(%q) accepted single-device stressors on a fleet run: %+v", spec, s)
			}
		}
		// The stressor list must mirror the populated sections.
		names := map[string]bool{}
		for _, n := range s.Stressors() {
			names[n] = true
		}
		if !names["load"] {
			t.Fatalf("Parse(%q): stressors missing load", spec)
		}
		if names["faults"] != (s.SEURate > 0 || s.Kill != nil) ||
			names["chaos"] != (s.Chaos != nil) ||
			names["churn"] != (s.Churn != nil) ||
			names["fleet"] != (s.Fleet != nil) ||
			names["power-cap"] != (s.CapW > 0 || s.DeviceCapW > 0) {
			t.Fatalf("Parse(%q): stressors %v inconsistent with spec %+v", spec, s.Stressors(), s)
		}
	})
}
