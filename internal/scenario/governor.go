package scenario

// Governor actuation shared by every run harness. The engine measures
// per-engine utilization every slice, the governor (internal/governor)
// re-evaluates the paper's power models against the configured caps and
// picks a ladder rung, and this file translates the rung into run actuation
// — deterministic serve pacers for DVFS frequency stepping, engine
// quiescing, merged-scheme admission control, and brownout drops. All
// decisions happen on the coordinating goroutine, so governed runs stay
// byte-identical at any -j.

import (
	"vrpower/internal/governor"
	"vrpower/internal/obs"
)

// obsGovernorDrops counts arrivals the governor refused (throttled or
// browned out) across all harnesses. The name keeps the historical netsim.
// prefix: it is a published metrics contract.
var obsGovernorDrops = obs.NewCounter("netsim.governor_drops")

// GovRun is one run's governor instance plus its actuation state: the
// decision in force and the deterministic serve pacers derived from it.
type GovRun struct {
	g   *governor.Governor
	dec governor.Decision
	// freq paces each engine's serve cycles at the rung's clock fraction;
	// admit paces each network's admitted arrivals at the rung's admission
	// fraction (only below 1 for merged-scheme rungs).
	freq  []governor.Pacer
	admit []governor.Pacer
}

// NewGovRun builds a run's governor from its configuration, or returns
// (nil, nil) when cfg is nil (ungoverned run). engines and k size the
// pacer sets; the event log receives the governor's escalation events.
func NewGovRun(cfg *governor.Config, plant governor.Plant, engines, k int, events *obs.EventLog) (*GovRun, error) {
	if cfg == nil {
		return nil, nil
	}
	g, err := governor.New(*cfg, plant)
	if err != nil {
		return nil, err
	}
	g.SetEventLog(events)
	r, i := g.Current()
	gv := &GovRun{
		g:     g,
		freq:  make([]governor.Pacer, engines),
		admit: make([]governor.Pacer, k),
	}
	gv.apply(governor.Decision{ObservedRung: i, RungIndex: i, Rung: r})
	return gv, nil
}

// Governor exposes the underlying controller (for Report and the deferred/
// brownout counters).
func (gv *GovRun) Governor() *governor.Governor { return gv.g }

// Decision returns the decision currently in force.
func (gv *GovRun) Decision() governor.Decision { return gv.dec }

// Report returns the controller's run summary.
func (gv *GovRun) Report() *governor.Report { return gv.g.Report() }

// apply installs a decision: fresh pacers so the new rung's cadence starts
// phase-aligned at the slice boundary.
func (gv *GovRun) apply(d governor.Decision) {
	gv.dec = d
	for e := range gv.freq {
		gv.freq[e] = governor.NewPacer(d.Rung.FreqFrac)
	}
	for vn := range gv.admit {
		gv.admit[vn] = governor.NewPacer(d.Rung.AdmitFrac)
	}
}

// Observe feeds one slice's measured utilization (and reload flags) to the
// governor and actuates its decision for the next slice.
func (gv *GovRun) Observe(cycle, cycles int64, util []float64, reloading []bool) governor.Decision {
	d := gv.g.Observe(governor.Sample{Cycle: cycle, Cycles: cycles, Util: util, Reloading: reloading})
	gv.apply(d)
	return d
}

// EngineServes reports whether engine e gets an input slot this cycle:
// quiesced engines never serve; frequency-stepped ones serve the rung's
// fraction of cycles on the pacer's even cadence.
func (gv *GovRun) EngineServes(e int) bool {
	if gv.dec.Rung.QuiescedEngine(e) {
		return false
	}
	return gv.freq[e].Tick()
}

// AdmitArrival applies the rung's admission policy to one arrival for
// network vn steered to the given engine; it returns true when the arrival
// must be dropped, charging the drop to the right per-VNID counter.
func (gv *GovRun) AdmitArrival(vn, engine int) bool {
	r := gv.dec.Rung
	switch {
	case r.Brownout:
		gv.g.CountBrownout(vn)
	case r.QuiescedEngine(engine):
		gv.g.CountThrottled(vn)
	case !gv.admit[vn].Tick():
		gv.g.CountThrottled(vn)
	default:
		return false
	}
	obsGovernorDrops.Inc()
	return true
}

// DropPaced is AdmitArrival plus frequency pacing at the arrival grain, for
// kernels that batch whole slices through the pipelines (no per-cycle
// service loop to gate): a frequency-stepped engine accepts only the rung's
// fraction of its arrivals.
func (gv *GovRun) DropPaced(vn, engine int) bool {
	if gv.AdmitArrival(vn, engine) {
		return true
	}
	if !gv.freq[engine].Tick() {
		gv.g.CountThrottled(vn)
		obsGovernorDrops.Inc()
		return true
	}
	return false
}

// CountDeferred charges one deferred (delayed, not dropped) arrival to
// network vn — the defer-never-drop accounting used by hitless kernels.
func (gv *GovRun) CountDeferred(vn int) { gv.g.CountDeferred(vn) }

// EngineGate is per-engine governor actuation for kernels that run
// persistent per-cycle simulators (the hitless-update model): quiescing and
// admission control gate the engine's backlog pulls (arrivals wait),
// frequency stepping gates its whole clock — but write bubbles always flow,
// so an armed update still commits. Install a rung with Apply between
// slices; consult ClockRuns/Hold inside the engine's cycle loop.
type EngineGate struct {
	quiesced bool
	freq     *governor.Pacer
	admit    *governor.Pacer
}

// Apply installs a rung on engine idx's gate.
func (g *EngineGate) Apply(r governor.Rung, idx int) {
	g.quiesced = r.Brownout || r.QuiescedEngine(idx)
	g.freq = nil
	if r.FreqFrac < 1 {
		p := governor.NewPacer(r.FreqFrac)
		g.freq = &p
	}
	g.admit = nil
	if r.AdmitFrac < 1 {
		p := governor.NewPacer(r.AdmitFrac)
		g.admit = &p
	}
}

// ClockRuns reports whether the engine's clock advances this cycle (false
// under a frequency-stepped rung's off beats: bubbles and lookups alike
// freeze, as a real stepped clock would impose).
func (g *EngineGate) ClockRuns() bool {
	return g.freq == nil || g.freq.Tick()
}

// Hold reports whether this cycle's backlog pull is gated by the governor
// (quiesced, or an admission pacer miss).
func (g *EngineGate) Hold() bool {
	if g.quiesced {
		return true
	}
	return g.admit != nil && !g.admit.Tick()
}
