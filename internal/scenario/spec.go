package scenario

// Spec is the composable scenario description behind cmd/lookupsim
// -scenario: a comma-separated key=value list selecting which stressors run
// together in one engine-driven simulation and how they are shaped. The
// grammar (see docs/CLI.md for the cookbook):
//
//	load=saturate | const:P | surge[:P0:P1:START:LEN] | burst:P:PERIOD:DUTY | ramp:P0:P1
//	faults=seu:RATE          SEU injection at RATE upsets per data bit-cycle
//	kill=ENGINE@CYCLE        scheduled hard failure of one engine
//	churn=BATCHESxOPS[:vn=N] hitless route-update batches (round-robin, or pinned)
//	chaos=KIND:N[+KIND:N..]  control-plane faults (crash, stall, torn, falsepos)
//	                         or device-scale faults (devcrash, brownout, flaky)
//	fleet=N[:spare=M]        multi-device run: N active devices plus M dark spares
//	power-cap=W              fleet-wide governor cap in Watts
//	power-cap-device=W       per-device governor cap in Watts
//	cycles=N                 offered-traffic window (default 32768)
//	slice=N                  control-plane quantum (default 1024)
//	queue=N                  per-network ingress queue capacity (default 64)
//	seed=N                   load-shape default seed offset (default 1)
//
// Every value is validated at parse time with a specific error naming the
// offending key and value; a Spec that parses is runnable. fleet= composes
// with load/chaos (device kinds)/power caps/dimensions only: the per-engine
// stressors (faults=, kill=, churn=, control-plane chaos kinds) target a
// single device's engines and are rejected alongside it.

import (
	"fmt"
	"strconv"
	"strings"
)

// Load-shape kinds.
const (
	LoadSaturate = "saturate"
	LoadConst    = "const"
	LoadSurge    = "surge"
	LoadBurst    = "burst"
	LoadRamp     = "ramp"
)

// LoadShape is the offered-load schedule: the per-network Bernoulli arrival
// probability as a function of the run cycle.
type LoadShape struct {
	Kind string
	// P0 is the baseline probability; P1 the elevated one (surge target,
	// ramp endpoint). Const and burst use P0 only.
	P0, P1 float64
	// Start/Len bound the surge window; negative values mean "resolve
	// against the run length" (Start = cycles/4, Len = cycles/2).
	Start, Len int64
	// Period/Duty shape the burst square wave: P0 for the first Duty
	// fraction of every Period cycles, idle for the rest.
	Period int64
	Duty   float64
}

// At returns the per-network arrival probability at cycle cyc of a
// total-cycle run.
func (l LoadShape) At(cyc, total int64) float64 {
	switch l.Kind {
	case LoadConst:
		return l.P0
	case LoadSurge:
		start, length := l.Start, l.Len
		if start < 0 {
			start = total / 4
		}
		if length < 0 {
			length = total / 2
		}
		if cyc >= start && cyc < start+length {
			return l.P1
		}
		return l.P0
	case LoadBurst:
		if float64(cyc%l.Period) < l.Duty*float64(l.Period) {
			return l.P0
		}
		return 0
	case LoadRamp:
		if total <= 1 {
			return l.P1
		}
		return l.P0 + (l.P1-l.P0)*float64(cyc)/float64(total-1)
	default: // LoadSaturate
		return 1
	}
}

// String renders the shape back in spec syntax.
func (l LoadShape) String() string {
	switch l.Kind {
	case LoadConst:
		return fmt.Sprintf("const:%g", l.P0)
	case LoadSurge:
		if l.Start < 0 {
			return fmt.Sprintf("surge:%g:%g", l.P0, l.P1)
		}
		return fmt.Sprintf("surge:%g:%g:%d:%d", l.P0, l.P1, l.Start, l.Len)
	case LoadBurst:
		return fmt.Sprintf("burst:%g:%d:%g", l.P0, l.Period, l.Duty)
	case LoadRamp:
		return fmt.Sprintf("ramp:%g:%g", l.P0, l.P1)
	default:
		return LoadSaturate
	}
}

// KillSpec schedules a hard failure of one engine.
type KillSpec struct {
	Engine int
	Cycle  int64
}

// ChurnSpec schedules hitless route-update batches.
type ChurnSpec struct {
	Batches int
	Ops     int
	// TargetVN pins every batch to one network; -1 round-robins.
	TargetVN int
}

// ChaosSpec schedules control-plane faults — crashes of the hitless
// updater before its commit, scrub-reload stalls, torn multi-stage writes,
// and spurious watchdog fires — plus the device-scale kinds carried by a
// fleet run: whole-device crashes, partial brownouts and flaky-reconfig
// devices. Crash faults ride the churn stressor's commits; the scrub-side
// classes ride the faults stressor's reloads; the device kinds ride fleet=.
type ChaosSpec struct {
	Crashes        int
	Stalls         int
	Torn           int
	FalsePositives int
	// Device-scale kinds (fleet runs only).
	DeviceCrashes int
	Brownouts     int
	FlakyDevices  int
}

// Total returns the number of faults the spec injects.
func (c ChaosSpec) Total() int {
	return c.Crashes + c.Stalls + c.Torn + c.FalsePositives + c.DeviceTotal()
}

// DeviceTotal counts the device-scale kinds (fleet carriers).
func (c ChaosSpec) DeviceTotal() int {
	return c.DeviceCrashes + c.Brownouts + c.FlakyDevices
}

// CtrlTotal counts the control-plane kinds (churn/faults carriers).
func (c ChaosSpec) CtrlTotal() int {
	return c.Crashes + c.Stalls + c.Torn + c.FalsePositives
}

// FleetSpec sizes a multi-device run: Devices active devices take the
// initial placement; Spares stay powered down until a failover wakes them.
type FleetSpec struct {
	Devices int
	Spares  int
}

// Spec is one parsed scenario: which stressors run and how they are shaped.
// Zero-valued optional sections (SEURate 0, nil Kill/Churn, zero caps) mean
// that stressor is absent from the run.
type Spec struct {
	Load    LoadShape
	SEURate float64
	Kill    *KillSpec
	Churn   *ChurnSpec
	Chaos   *ChaosSpec
	Fleet   *FleetSpec
	// CapW / DeviceCapW configure the power-envelope governor; both zero
	// runs ungoverned (unless the harness has a governor attached).
	CapW       float64
	DeviceCapW float64
	Cycles     int64
	Slice      int64
	Queue      int
	Seed       int64
	// Raw is the spec string as given, for reports.
	Raw string
}

// Stressors lists the active stressor names, for reports and logs.
func (s Spec) Stressors() []string {
	names := []string{"load"}
	if s.Fleet != nil {
		names = append(names, "fleet")
	}
	if s.SEURate > 0 || s.Kill != nil {
		names = append(names, "faults")
	}
	if s.Chaos != nil {
		names = append(names, "chaos")
	}
	if s.Churn != nil {
		names = append(names, "churn")
	}
	if s.CapW > 0 || s.DeviceCapW > 0 {
		names = append(names, "power-cap")
	}
	return names
}

func parseFloat(key, v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("scenario: %s: %q is not a number", key, v)
	}
	return f, nil
}

func parseInt(key, v string) (int64, error) {
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("scenario: %s: %q is not an integer", key, v)
	}
	return n, nil
}

func parseLoad(v string) (LoadShape, error) {
	parts := strings.Split(v, ":")
	l := LoadShape{Kind: parts[0]}
	args := parts[1:]
	want := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("scenario: load=%s takes %d argument(s), got %d (grammar: %s)",
				l.Kind, n, len(args), loadGrammar(l.Kind))
		}
		return nil
	}
	var err error
	num := func(i int) float64 {
		if err != nil {
			return 0
		}
		var f float64
		f, err = parseFloat("load", args[i])
		return f
	}
	switch l.Kind {
	case LoadSaturate:
		if err := want(0); err != nil {
			return l, err
		}
		return l, nil
	case LoadConst:
		if err := want(1); err != nil {
			return l, err
		}
		l.P0 = num(0)
	case LoadSurge:
		l.Start, l.Len = -1, -1
		switch len(args) {
		case 0:
			l.P0, l.P1 = 0.3, 0.9
		case 2:
			l.P0, l.P1 = num(0), num(1)
		case 4:
			l.P0, l.P1 = num(0), num(1)
			if err == nil {
				l.Start, err = parseInt("load", args[2])
			}
			if err == nil {
				l.Len, err = parseInt("load", args[3])
			}
			if err == nil && (l.Start < 0 || l.Len < 1) {
				return l, fmt.Errorf("scenario: load=%q: surge window [%d,+%d) invalid, want start >= 0 and len >= 1", v, l.Start, l.Len)
			}
		default:
			return l, fmt.Errorf("scenario: load=surge takes 0, 2 or 4 arguments, got %d (grammar: %s)",
				len(args), loadGrammar(LoadSurge))
		}
	case LoadBurst:
		if err := want(3); err != nil {
			return l, err
		}
		l.P0 = num(0)
		if err == nil {
			l.Period, err = parseInt("load", args[1])
		}
		l.Duty = num(2)
		if err == nil && l.Period < 1 {
			return l, fmt.Errorf("scenario: load=%q: burst period %d, want >= 1", v, l.Period)
		}
		if err == nil && (l.Duty <= 0 || l.Duty > 1) {
			return l, fmt.Errorf("scenario: load=%q: burst duty %g outside (0,1]", v, l.Duty)
		}
	case LoadRamp:
		if err := want(2); err != nil {
			return l, err
		}
		l.P0, l.P1 = num(0), num(1)
	default:
		return l, fmt.Errorf("scenario: load=%q: unknown load shape %q (want saturate, const, surge, burst or ramp)", v, l.Kind)
	}
	if err != nil {
		return l, err
	}
	for _, p := range []float64{l.P0, l.P1} {
		if p < 0 || p > 1 {
			return l, fmt.Errorf("scenario: load=%q: probability %g outside [0,1]", v, p)
		}
	}
	return l, nil
}

func loadGrammar(kind string) string {
	switch kind {
	case LoadConst:
		return "const:P"
	case LoadSurge:
		return "surge[:P0:P1[:START:LEN]]"
	case LoadBurst:
		return "burst:P:PERIOD:DUTY"
	case LoadRamp:
		return "ramp:P0:P1"
	default:
		return "saturate"
	}
}

// Parse parses a -scenario spec string. The empty string is an error; every
// malformed key or value yields a specific message naming the key and the
// expected grammar.
func Parse(spec string) (Spec, error) {
	s := Spec{
		Load:   LoadShape{Kind: LoadSaturate},
		Cycles: 32768,
		Slice:  1024,
		Queue:  64,
		Seed:   1,
		Raw:    spec,
	}
	if strings.TrimSpace(spec) == "" {
		return s, fmt.Errorf("scenario: empty spec (example: load=surge,faults=seu:1e-9,churn=100x50,power-cap=45)")
	}
	seen := map[string]bool{}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			// A silent skip here would make "load=surge,," and
			// "load=surge," parse — and hide a truncated spec in a shell
			// script. Reject with the position spelled out.
			return s, fmt.Errorf("scenario: empty item (trailing or doubled separator) in %q", spec)
		}
		key, val, found := strings.Cut(item, "=")
		if !found {
			return s, fmt.Errorf("scenario: %q is not key=value", item)
		}
		if seen[key] {
			return s, fmt.Errorf("scenario: duplicate key %q (second value %q)", key, val)
		}
		seen[key] = true
		var err error
		switch key {
		case "load":
			s.Load, err = parseLoad(val)
		case "faults":
			kind, rate, found := strings.Cut(val, ":")
			if !found || kind != "seu" {
				return s, fmt.Errorf("scenario: faults=%q, want faults=seu:RATE (upsets per bit-cycle)", val)
			}
			s.SEURate, err = parseFloat("faults", rate)
			if err == nil && (s.SEURate <= 0 || s.SEURate >= 1) {
				return s, fmt.Errorf("scenario: faults=%q: SEU rate %g outside (0,1) per bit-cycle", val, s.SEURate)
			}
		case "kill":
			e, c, found := strings.Cut(val, "@")
			if !found {
				return s, fmt.Errorf("scenario: kill=%q, want kill=ENGINE@CYCLE", val)
			}
			var eng, cyc int64
			if eng, err = parseInt("kill", e); err == nil {
				cyc, err = parseInt("kill", c)
			}
			if err == nil && (eng < 0 || cyc < 0) {
				return s, fmt.Errorf("scenario: kill=%q: engine %d at cycle %d, want both >= 0", val, eng, cyc)
			}
			s.Kill = &KillSpec{Engine: int(eng), Cycle: cyc}
		case "churn":
			body, vnPart, hasVN := strings.Cut(val, ":")
			b, o, found := strings.Cut(body, "x")
			if !found {
				return s, fmt.Errorf("scenario: churn=%q, want churn=BATCHESxOPS[:vn=N]", val)
			}
			var batches, ops int64
			if batches, err = parseInt("churn", b); err == nil {
				ops, err = parseInt("churn", o)
			}
			if err == nil && (batches < 1 || ops < 1) {
				return s, fmt.Errorf("scenario: churn=%q: %d batches x %d ops, want both >= 1", val, batches, ops)
			}
			c := &ChurnSpec{Batches: int(batches), Ops: int(ops), TargetVN: -1}
			if hasVN && err == nil {
				n, ok := strings.CutPrefix(vnPart, "vn=")
				if !ok {
					return s, fmt.Errorf("scenario: churn=%q: option %q, want vn=N", val, vnPart)
				}
				var vn int64
				if vn, err = parseInt("churn", n); err == nil && vn < 0 {
					return s, fmt.Errorf("scenario: churn=%q: vn %d, want >= 0", val, vn)
				}
				c.TargetVN = int(vn)
			}
			s.Churn = c
		case "chaos":
			s.Chaos, err = parseChaos(val)
		case "fleet":
			s.Fleet, err = parseFleet(val)
		case "power-cap":
			s.CapW, err = parseFloat("power-cap", val)
			if err == nil && s.CapW <= 0 {
				return s, fmt.Errorf("scenario: power-cap=%q: %g W, want > 0", val, s.CapW)
			}
		case "power-cap-device":
			s.DeviceCapW, err = parseFloat("power-cap-device", val)
			if err == nil && s.DeviceCapW <= 0 {
				return s, fmt.Errorf("scenario: power-cap-device=%q: %g W, want > 0", val, s.DeviceCapW)
			}
		case "cycles":
			s.Cycles, err = parseInt("cycles", val)
			if err == nil && s.Cycles < 1 {
				return s, fmt.Errorf("scenario: cycles=%q: %d, want >= 1", val, s.Cycles)
			}
		case "slice":
			s.Slice, err = parseInt("slice", val)
			if err == nil && s.Slice < 1 {
				return s, fmt.Errorf("scenario: slice=%q: %d, want >= 1", val, s.Slice)
			}
		case "queue":
			var q int64
			q, err = parseInt("queue", val)
			if err == nil && q < 1 {
				return s, fmt.Errorf("scenario: queue=%q: %d, want >= 1", val, q)
			}
			s.Queue = int(q)
		case "seed":
			s.Seed, err = parseInt("seed", val)
		default:
			return s, fmt.Errorf("scenario: unknown key %q (value %q; want load, faults, kill, churn, chaos, fleet, power-cap, power-cap-device, cycles, slice, queue or seed)", key, val)
		}
		if err != nil {
			return s, err
		}
	}
	if s.Kill != nil && s.Kill.Cycle >= s.Cycles {
		return s, fmt.Errorf("scenario: kill at cycle %d is past the %d-cycle run", s.Kill.Cycle, s.Cycles)
	}
	if s.Fleet != nil {
		// Fleet runs re-place networks across devices, so the per-engine
		// stressors (which name one device's engines) cannot compose with
		// them; reject at parse time rather than run as a silent no-op.
		switch {
		case s.SEURate > 0 || s.Kill != nil:
			return s, fmt.Errorf("scenario: fleet=%d: faults=/kill= target a single device's engines and cannot compose with a fleet run", s.Fleet.Devices)
		case s.Churn != nil:
			return s, fmt.Errorf("scenario: fleet=%d: churn= targets a single device's engines and cannot compose with a fleet run", s.Fleet.Devices)
		}
		if s.Chaos != nil && s.Chaos.CtrlTotal() > 0 {
			return s, fmt.Errorf("scenario: fleet=%d: control-plane chaos kinds (crash, stall, torn, falsepos) ride churn/faults; a fleet run takes devcrash, brownout or flaky", s.Fleet.Devices)
		}
		if s.Chaos != nil && s.Chaos.DeviceCrashes > s.Fleet.Devices {
			return s, fmt.Errorf("scenario: chaos devcrash:%d over fleet=%d devices, want distinct victims", s.Chaos.DeviceCrashes, s.Fleet.Devices)
		}
	}
	if s.Chaos != nil {
		// Chaos faults ride other stressors' operations: crashes need
		// hitless commits to crash, scrub-side faults need reloads to
		// molest, device kinds need a fleet. Validate the composition so a
		// chaos spec with no carrier fails at parse time, not as a silent
		// no-op run.
		if s.Chaos.Crashes > 0 && s.Churn == nil {
			return s, fmt.Errorf("scenario: chaos crash faults need churn= (crashes hit hitless commits)")
		}
		if s.Chaos.Stalls+s.Chaos.Torn+s.Chaos.FalsePositives > 0 && s.SEURate <= 0 && s.Kill == nil {
			return s, fmt.Errorf("scenario: chaos stall/torn/falsepos faults need faults= or kill= (they hit scrub reloads)")
		}
		if s.Chaos.DeviceTotal() > 0 && s.Fleet == nil {
			return s, fmt.Errorf("scenario: chaos devcrash/brownout/flaky faults need fleet= (they hit whole devices)")
		}
	}
	return s, nil
}

// parseFleet parses fleet=N[:spare=M].
func parseFleet(val string) (*FleetSpec, error) {
	body, sparePart, hasSpare := strings.Cut(val, ":")
	n, err := parseInt("fleet", body)
	if err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("scenario: fleet=%q: %d devices, want >= 1", val, n)
	}
	f := &FleetSpec{Devices: int(n)}
	if hasSpare {
		m, ok := strings.CutPrefix(sparePart, "spare=")
		if !ok {
			return nil, fmt.Errorf("scenario: fleet=%q: option %q, want spare=M", val, sparePart)
		}
		spares, err := parseInt("fleet", m)
		if err != nil {
			return nil, err
		}
		if spares < 0 {
			return nil, fmt.Errorf("scenario: fleet=%q: %d spares, want >= 0", val, spares)
		}
		f.Spares = int(spares)
	}
	return f, nil
}

// parseChaos parses chaos=KIND:N[+KIND:N...] with control-plane kinds
// crash, stall, torn and falsepos, and device-scale kinds devcrash,
// brownout and flaky.
func parseChaos(val string) (*ChaosSpec, error) {
	c := &ChaosSpec{}
	seen := map[string]bool{}
	for _, part := range strings.Split(val, "+") {
		kind, cnt, found := strings.Cut(part, ":")
		if !found {
			return nil, fmt.Errorf("scenario: chaos=%q: item %q, want KIND:N (kinds: crash, stall, torn, falsepos, devcrash, brownout, flaky)", val, part)
		}
		if seen[kind] {
			return nil, fmt.Errorf("scenario: chaos=%q: duplicate chaos kind %q", val, kind)
		}
		seen[kind] = true
		n, err := parseInt("chaos", cnt)
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("scenario: chaos=%q: %s count %d, want >= 1", val, kind, n)
		}
		switch kind {
		case "crash":
			c.Crashes = int(n)
		case "stall":
			c.Stalls = int(n)
		case "torn":
			c.Torn = int(n)
		case "falsepos":
			c.FalsePositives = int(n)
		case "devcrash":
			c.DeviceCrashes = int(n)
		case "brownout":
			c.Brownouts = int(n)
		case "flaky":
			c.FlakyDevices = int(n)
		default:
			return nil, fmt.Errorf("scenario: chaos=%q: unknown chaos kind %q (want crash, stall, torn, falsepos, devcrash, brownout or flaky)", val, kind)
		}
	}
	return c, nil
}
