package scenario

import (
	"strings"
	"testing"
)

func TestParseFullCompoundSpec(t *testing.T) {
	s, err := Parse("load=surge,faults=seu:1e-9,churn=100x50,power-cap=45")
	if err != nil {
		t.Fatal(err)
	}
	if s.Load.Kind != LoadSurge || s.Load.P0 != 0.3 || s.Load.P1 != 0.9 {
		t.Fatalf("surge defaults: %+v", s.Load)
	}
	if s.SEURate != 1e-9 {
		t.Fatalf("SEU rate %g", s.SEURate)
	}
	if s.Churn == nil || s.Churn.Batches != 100 || s.Churn.Ops != 50 || s.Churn.TargetVN != -1 {
		t.Fatalf("churn: %+v", s.Churn)
	}
	if s.CapW != 45 {
		t.Fatalf("cap %g", s.CapW)
	}
	if s.Cycles != 32768 || s.Slice != 1024 || s.Queue != 64 || s.Seed != 1 {
		t.Fatalf("defaults: %+v", s)
	}
	got := s.Stressors()
	want := []string{"load", "faults", "churn", "power-cap"}
	if len(got) != len(want) {
		t.Fatalf("stressors %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stressors %v, want %v", got, want)
		}
	}
}

func TestParseEveryKey(t *testing.T) {
	s, err := Parse("load=const:0.5,faults=seu:2e-8,kill=1@5000,churn=4x64:vn=2,power-cap=30,power-cap-device=12,cycles=16384,slice=512,queue=32,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if s.Load.Kind != LoadConst || s.Load.P0 != 0.5 {
		t.Fatalf("load: %+v", s.Load)
	}
	if s.Kill == nil || s.Kill.Engine != 1 || s.Kill.Cycle != 5000 {
		t.Fatalf("kill: %+v", s.Kill)
	}
	if s.Churn.TargetVN != 2 {
		t.Fatalf("churn vn: %+v", s.Churn)
	}
	if s.DeviceCapW != 12 || s.Cycles != 16384 || s.Slice != 512 || s.Queue != 32 || s.Seed != 7 {
		t.Fatalf("parsed: %+v", s)
	}
}

func TestParseLoadShapes(t *testing.T) {
	cases := []struct {
		spec string
		at   []struct {
			cyc, total int64
			want       float64
		}
	}{
		{"load=saturate", []struct {
			cyc, total int64
			want       float64
		}{{0, 100, 1}, {99, 100, 1}}},
		{"load=const:0.25", []struct {
			cyc, total int64
			want       float64
		}{{0, 100, 0.25}, {50, 100, 0.25}}},
		{"load=surge:0.2:0.8:100:200", []struct {
			cyc, total int64
			want       float64
		}{{99, 1000, 0.2}, {100, 1000, 0.8}, {299, 1000, 0.8}, {300, 1000, 0.2}}},
		{"load=burst:0.6:100:0.25", []struct {
			cyc, total int64
			want       float64
		}{{0, 1000, 0.6}, {24, 1000, 0.6}, {25, 1000, 0}, {99, 1000, 0}, {100, 1000, 0.6}}},
		{"load=ramp:0:1", []struct {
			cyc, total int64
			want       float64
		}{{0, 101, 0}, {100, 101, 1}, {50, 101, 0.5}}},
	}
	for _, c := range cases {
		s, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		for _, a := range c.at {
			if got := s.Load.At(a.cyc, a.total); got != a.want {
				t.Errorf("%s At(%d,%d) = %g, want %g", c.spec, a.cyc, a.total, got, a.want)
			}
		}
		// The shape must render back to parseable spec syntax.
		if _, err := parseLoad(s.Load.String()); err != nil {
			t.Errorf("%s: String() %q does not re-parse: %v", c.spec, s.Load.String(), err)
		}
	}
}

func TestParseSurgeDefaultWindow(t *testing.T) {
	s, err := Parse("load=surge:0.1:0.9,cycles=4096")
	if err != nil {
		t.Fatal(err)
	}
	// Default window: [cycles/4, cycles/4 + cycles/2).
	if got := s.Load.At(1023, s.Cycles); got != 0.1 {
		t.Fatalf("pre-surge %g", got)
	}
	if got := s.Load.At(1024, s.Cycles); got != 0.9 {
		t.Fatalf("surge start %g", got)
	}
	if got := s.Load.At(3071, s.Cycles); got != 0.9 {
		t.Fatalf("surge end-1 %g", got)
	}
	if got := s.Load.At(3072, s.Cycles); got != 0.1 {
		t.Fatalf("post-surge %g", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"", "empty spec"},
		{"load", "not key=value"},
		{"bogus=1", `unknown key "bogus"`},
		{"load=const:0.5,load=saturate", `duplicate key "load"`},
		{"load=warp:1", "unknown load shape"},
		{"load=const", "takes 1 argument"},
		{"load=const:1.5", "outside [0,1]"},
		{"load=const:abc", "not a number"},
		{"load=surge:0.1", "takes 0, 2 or 4 arguments"},
		{"load=surge:0.1:0.9:-5:100", "want start >= 0"},
		{"load=burst:0.5:0:0.5", "period 0"},
		{"load=burst:0.5:100:1.5", "duty 1.5 outside (0,1]"},
		{"faults=1e-9", "want faults=seu:RATE"},
		{"faults=seu:0", "outside (0,1)"},
		{"faults=seu:1", "outside (0,1)"},
		{"kill=3", "want kill=ENGINE@CYCLE"},
		{"kill=-1@100", "want both >= 0"},
		{"kill=0@50000", "past the 32768-cycle run"},
		{"churn=100", "want churn=BATCHESxOPS"},
		{"churn=0x50", "want both >= 1"},
		{"churn=4x64:target=2", "want vn=N"},
		{"power-cap=0", "want > 0"},
		{"power-cap=-3", "want > 0"},
		{"power-cap-device=0", "want > 0"},
		{"cycles=0", "want >= 1"},
		{"slice=0", "want >= 1"},
		{"queue=0", "want >= 1"},
		{"seed=x", "not an integer"},
		{"load=saturate,", "empty item"},
		{",load=saturate", "empty item"},
		{"load=saturate,,seed=2", "empty item"},
		{"load=saturate, ,seed=2", "empty item"},
		{"chaos=crash:2", "need churn="},
		{"chaos=stall:1", "need faults="},
		{"churn=4x16,chaos=crash", "want KIND:N"},
		{"churn=4x16,chaos=crash:0", "want >= 1"},
		{"churn=4x16,chaos=crash:x", "not an integer"},
		{"churn=4x16,chaos=crash:1+crash:2", `duplicate chaos kind "crash"`},
		{"churn=4x16,chaos=meteor:1", `unknown chaos kind "meteor"`},
		{"fleet=0", "0 devices, want >= 1"},
		{"fleet=x", "not an integer"},
		{"fleet=2:x=1", `option "x=1", want spare=M`},
		{"fleet=2:spare=-1", "-1 spares, want >= 0"},
		{"fleet=2:spare=y", "not an integer"},
		{"fleet=2,faults=seu:1e-9", "cannot compose with a fleet run"},
		{"fleet=2,kill=0@100", "cannot compose with a fleet run"},
		{"fleet=2,churn=4x16", "cannot compose with a fleet run"},
		{"fleet=2,chaos=crash:1", "a fleet run takes devcrash, brownout or flaky"},
		{"fleet=2,chaos=devcrash:3", "over fleet=2 devices, want distinct victims"},
		{"chaos=devcrash:1", "need fleet="},
		{"chaos=brownout:1", "need fleet="},
		{"chaos=flaky:1", "need fleet="},
		{"fleet=2,chaos=devcrash:0", "want >= 1"},
	}
	for _, c := range cases {
		_, err := Parse(c.spec)
		if err == nil {
			t.Errorf("Parse(%q): no error, want %q", c.spec, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) = %q, want substring %q", c.spec, err, c.want)
		}
	}
}

func TestParseChaos(t *testing.T) {
	s, err := Parse("load=const:0.4,faults=seu:1e-9,churn=10x32,chaos=crash:3+stall:2+torn:1+falsepos:1")
	if err != nil {
		t.Fatal(err)
	}
	c := s.Chaos
	if c == nil || c.Crashes != 3 || c.Stalls != 2 || c.Torn != 1 || c.FalsePositives != 1 {
		t.Fatalf("chaos: %+v", c)
	}
	if c.Total() != 7 {
		t.Fatalf("Total %d, want 7", c.Total())
	}
	got := s.Stressors()
	want := []string{"load", "faults", "chaos", "churn"}
	if len(got) != len(want) {
		t.Fatalf("stressors %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stressors %v, want %v", got, want)
		}
	}
	// Crash-only chaos needs churn but not faults=.
	if _, err := Parse("churn=4x16,chaos=crash:1"); err != nil {
		t.Fatalf("crash-only chaos with churn: %v", err)
	}
	// Scrub-side chaos is satisfied by kill= as well as faults=.
	if _, err := Parse("kill=0@1000,chaos=stall:1"); err != nil {
		t.Fatalf("stall chaos with kill: %v", err)
	}
}

func TestParseFleet(t *testing.T) {
	s, err := Parse("load=const:0.4,fleet=4:spare=2,chaos=devcrash:1+brownout:2+flaky:1,power-cap=60")
	if err != nil {
		t.Fatal(err)
	}
	if s.Fleet == nil || s.Fleet.Devices != 4 || s.Fleet.Spares != 2 {
		t.Fatalf("fleet: %+v", s.Fleet)
	}
	c := s.Chaos
	if c == nil || c.DeviceCrashes != 1 || c.Brownouts != 2 || c.FlakyDevices != 1 {
		t.Fatalf("chaos: %+v", c)
	}
	if c.DeviceTotal() != 4 || c.CtrlTotal() != 0 || c.Total() != 4 {
		t.Fatalf("chaos totals: device %d ctrl %d total %d", c.DeviceTotal(), c.CtrlTotal(), c.Total())
	}
	got := s.Stressors()
	want := []string{"load", "fleet", "chaos", "power-cap"}
	if len(got) != len(want) {
		t.Fatalf("stressors %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stressors %v, want %v", got, want)
		}
	}
	// Spares default to zero; a bare fleet needs no chaos.
	s, err = Parse("fleet=2")
	if err != nil {
		t.Fatal(err)
	}
	if s.Fleet.Devices != 2 || s.Fleet.Spares != 0 {
		t.Fatalf("bare fleet: %+v", s.Fleet)
	}
}

func TestKillBeyondExplicitCycles(t *testing.T) {
	// Order independence: cycles may come after kill in the spec.
	if _, err := Parse("kill=0@40000,cycles=65536"); err != nil {
		t.Fatalf("kill before larger cycles: %v", err)
	}
	if _, err := Parse("cycles=1000,kill=0@40000"); err == nil {
		t.Fatal("kill past explicit cycles accepted")
	}
}
