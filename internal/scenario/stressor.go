package scenario

// A Stressor is a pluggable source of controlled adversity — fault
// injection, update churn, load shaping, a power cap — that the Engine
// drives through a common hook interface. Stressors never touch each other
// directly: they act on the run through their hooks and observe it through
// whatever state they share with the kernel.
//
// Ordering and priority rules (the determinism contract):
//
//  1. All hooks run on the single coordinating goroutine, never inside the
//     kernel's worker fan-out. A stressor may therefore keep plain state.
//  2. At each slice boundary b the Engine calls every stressor's Boundary
//     in registration order — control-plane work first (land reloads,
//     commit/arm update batches), so a repair and a commit scheduled for
//     the same boundary land in a fixed order regardless of -j.
//  3. After the boundary, still before any arrival of the slice, the
//     Engine calls every stressor's PreSlice in registration order — the
//     data-plane-adjacent work (engine kills, SEU injection, background
//     readback sweeps) that must precede the slice's traffic.
//  4. The kernel then executes the slice. It may consult stressor state
//     (is this engine down? is an update in flight?) but must not mutate
//     it from worker goroutines.
//  5. After the kernel's slice, the Engine observes telemetry and the
//     governor; the governor's new decision takes effect from the next
//     slice's first cycle.
//
// Registration order is the priority order. The composed runner registers
// faults before churn: a scrub decision made at boundary b is visible to
// the churn stressor's arm decision at the same boundary (it will not arm
// an update on an engine that just went down).
type Stressor interface {
	// Name identifies the stressor in reports and error messages.
	Name() string
	// Boundary runs control-plane work at slice boundary b (b = t*S, and
	// once more after the drain loop exits, so work that completes exactly
	// at the bound still lands). draining marks post-traffic slices.
	Boundary(b int64, draining bool) error
	// PreSlice runs data-plane-adjacent work for the slice starting at b,
	// after every stressor's Boundary and before any arrival. n is the
	// slice's cycle count. draining marks post-traffic slices (no new
	// faults are scheduled there, but e.g. background sweeps continue).
	PreSlice(b, n int64, draining bool) error
	// Outstanding reports work that must complete before the run can end;
	// the Engine keeps draining (up to its bound) while any stressor or
	// the kernel reports outstanding work.
	Outstanding() bool
}

// NopStressor implements Stressor with no-ops; embed it to implement only
// the hooks a stressor needs.
type NopStressor struct{}

func (NopStressor) Boundary(int64, bool) error        { return nil }
func (NopStressor) PreSlice(int64, int64, bool) error { return nil }
func (NopStressor) Outstanding() bool                 { return false }
