package scenario

// Telemetry plumbing shared by every run harness. A Telemetry bundle
// attaches the optional observers — trace sampler + ring, slice time series,
// event log — to a run; every obs component is nil-safe, so the loops call
// through the bundle unguarded and a detached run pays only nil checks.
//
// Determinism contract: sampling decisions are pure functions of
// (sampler seed, VNID, seq); series rows and events are appended only from
// the single coordinating goroutine; trace Puts may come from engine
// workers, but the ring's dump orders by Seq. The same run seeds therefore
// yield byte-identical telemetry dumps at any -j (for traces: as long as
// the sampled volume stays within ring capacity).

import (
	"fmt"

	"vrpower/internal/fpga"
	"vrpower/internal/ip"
	"vrpower/internal/obs"
	"vrpower/internal/pipeline"
	"vrpower/internal/power"
)

// Live gauges mirroring the most recent slice row (surfaced by -stats and
// the -http /metrics endpoint while a run is in progress). The names keep
// the historical netsim. prefix: they are a published metrics contract.
var (
	obsSlicePowerW   = obs.NewGauge("netsim.slice_power_w")
	obsSliceGbps     = obs.NewGauge("netsim.slice_throughput_gbps")
	obsBacklogPkts   = obs.NewGauge("netsim.backlog_pkts")
	obsScrubsActive  = obs.NewGauge("netsim.scrubs_active")
	obsUpdatesActive = obs.NewGauge("netsim.updates_active")
	obsRecoveries    = obs.NewGauge("netsim.recoveries")
	obsDegradedVNs   = obs.NewGauge("netsim.degraded_vns")
	obsSliceCapW     = obs.NewGauge("netsim.slice_cap_w")
	obsSliceGovRung  = obs.NewGauge("netsim.slice_gov_rung")
	obsSliceDynJ     = obs.NewGauge("netsim.slice_dyn_j")
	obsSliceStaticJ  = obs.NewGauge("netsim.slice_static_j")
	obsSliceJPerBit  = obs.NewGauge("netsim.slice_j_per_bit")
)

// Telemetry is the set of observers a run feeds. Any field may be nil: a
// nil Sampler/Traces disables flight tracing, a nil Series disables the
// slice time series, a nil Events disables the event log.
type Telemetry struct {
	Sampler *obs.TraceSampler
	Traces  *obs.TraceRing
	Series  *obs.TimeSeries
	Events  *obs.EventLog
}

// NoTelemetry is the shared all-nil default bundle; holders call through it
// so they never need a nil guard on the bundle itself.
var NoTelemetry = &Telemetry{}

// Tracing reports whether flight tracing is live (a sampler and a ring are
// both attached).
func (t *Telemetry) Tracing() bool { return t.Sampler != nil && t.Traces != nil }

// PutLookupTrace records one sampled lookup that completed a pipeline
// traversal. base offsets the sim-local Enter/Exit stamps into run cycles
// (zero when the sim already runs on the run clock); wait is the cycles the
// packet spent queued before entry.
func (t *Telemetry) PutLookupTrace(seq int64, vn, engine int, base int64, res pipeline.Result, wait int64, outcome string) {
	if t.Traces == nil {
		return
	}
	nhi := int(res.NHI)
	if res.Faulted || res.NHI == ip.NoRoute {
		nhi = -1
	}
	t.Traces.Put(&obs.FlightTrace{
		Seq:       seq,
		VN:        vn,
		Engine:    engine,
		Addr:      res.Addr.String(),
		Enter:     base + res.EnterCycle,
		Exit:      base + res.ExitCycle,
		Wait:      wait,
		Displaced: wait > 0,
		Outcome:   outcome,
		NHI:       nhi,
		Visits:    res.Visits,
	})
}

// PutDropTrace records a sampled packet refused at ingress (its engine was
// down): no pipeline traversal, Enter == Exit == the drop cycle.
func (t *Telemetry) PutDropTrace(seq int64, vn, engine int, cycle int64, addr ip.Addr) {
	if t.Traces == nil {
		return
	}
	t.Traces.Put(&obs.FlightTrace{
		Seq:     seq,
		VN:      vn,
		Engine:  engine,
		Addr:    addr.String(),
		Enter:   cycle,
		Exit:    cycle,
		Outcome: "drop-down",
		NHI:     -1,
	})
}

// LookupOutcome classifies a completed lookup against its oracle's answer.
func LookupOutcome(res pipeline.Result, want ip.NextHop) string {
	switch {
	case res.Faulted:
		return "drop-fault"
	case res.NHI != want:
		return "mismatch"
	case want == ip.NoRoute:
		return "noroute"
	default:
		return "forward"
	}
}

// SeriesColumns is the unified slice-row schema shared by every run loop:
// power, throughput, backlog, control-plane activity, journaled-recovery
// progress (cumulative replays+rollbacks and currently degraded networks,
// both zero without the chaos stressor), the governor's active cap and
// ladder rung (both zero when ungoverned), the slice's attributed energy
// (dynamic and static Joules plus joules per forwarded bit, all zero when
// no meter is attached), then one availability column per network.
func SeriesColumns(k int) []string {
	cols := []string{"power_w", "throughput_gbps", "backlog_pkts", "scrubs_active", "updates_active", "recoveries", "degraded_vns", "cap_w", "gov_rung", "dyn_j", "static_j", "j_per_bit"}
	for vn := 0; vn < k; vn++ {
		cols = append(cols, fmt.Sprintf("avail_vn%02d", vn))
	}
	return cols
}

// InitSeries starts a fresh series for one run under the unified schema.
func (t *Telemetry) InitSeries(k int) {
	t.Series.Init(SeriesColumns(k)...)
}

// AppendSlice records one slice row (and mirrors it into the live gauges).
// cycle is the slice's start; capW and rung are the governor's active cap
// and observed ladder rung (zero when ungoverned); dynJ/staticJ/jPerBit are
// the slice's attributed energy (zero when no meter is attached); avail may
// be nil for "all networks up".
func (t *Telemetry) AppendSlice(k int, cycle int64, powerW, gbps float64, backlog, scrubs, updates, recoveries, degraded int, capW, rung, dynJ, staticJ, jPerBit float64, avail []bool) {
	obsSlicePowerW.Set(powerW)
	obsSliceGbps.Set(gbps)
	obsBacklogPkts.SetInt(int64(backlog))
	obsScrubsActive.SetInt(int64(scrubs))
	obsUpdatesActive.SetInt(int64(updates))
	obsRecoveries.SetInt(int64(recoveries))
	obsDegradedVNs.SetInt(int64(degraded))
	obsSliceCapW.Set(capW)
	obsSliceGovRung.Set(rung)
	obsSliceDynJ.Set(dynJ)
	obsSliceStaticJ.Set(staticJ)
	obsSliceJPerBit.Set(jPerBit)
	if t.Series == nil {
		return
	}
	vals := make([]float64, 0, 12+k)
	vals = append(vals, powerW, gbps, float64(backlog), float64(scrubs), float64(updates),
		float64(recoveries), float64(degraded), capW, rung, dynJ, staticJ, jPerBit)
	for vn := 0; vn < k; vn++ {
		up := 1.0
		if avail != nil && !avail[vn] {
			up = 0
		}
		vals = append(vals, up)
	}
	t.Series.Append(cycle, vals...)
}

// SlicePower evaluates the paper's power model over one slice: the router's
// design with each engine's nominal utilization replaced by its measured
// slice-local activity (pipeline Stats stage-active fraction). Idle engines
// still pay static and clock power, matching the model's utilization
// semantics.
func SlicePower(d power.SystemDesign, util []float64) float64 {
	engines := make([]power.EngineDesign, len(d.Engines))
	copy(engines, d.Engines)
	for i := range engines {
		u := 0.0
		if i < len(util) {
			u = util[i]
		}
		if u < 0 {
			u = 0
		} else if u > 1 {
			u = 1
		}
		engines[i].Utilization = u
	}
	d.Engines = engines
	br, err := power.Estimate(d)
	if err != nil {
		return 0
	}
	return br.Total()
}

// SliceGbps converts packets delivered over a cycle window into line-rate
// throughput: the fraction of cycles that carried a packet times one
// engine-slot's worth of minimum-size-packet bandwidth at fmaxMHz.
func SliceGbps(fmaxMHz float64, delivered, cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(delivered) / float64(cycles) * fpga.ThroughputGbps(fmaxMHz, 1)
}

// UtilDelta turns a cumulative pipeline.Stats into this window's stage
// utilization, given the previous window's (activeSum, cycles) cursor; it
// returns the utilization plus the new cursor.
func UtilDelta(st pipeline.Stats, prevActive, prevCycles int64) (float64, int64, int64) {
	var active int64
	for _, a := range st.StageActive {
		active += a
	}
	dc := st.Cycles - prevCycles
	if dc <= 0 || len(st.StageActive) == 0 {
		return 0, active, st.Cycles
	}
	return float64(active-prevActive) / float64(dc*int64(len(st.StageActive))), active, st.Cycles
}
