// Package sched implements the egress scheduling stage of the data plane.
// The paper's transparency requirement — consolidation "must be transparent
// to the user ... ensuring the throughput and latency requirements
// guaranteed originally" (Section I) — is enforced here: each virtual
// network gets its own egress queue and a Deficit Round Robin (DRR)
// scheduler serves them in proportion to their subscribed weights, so one
// tenant's burst cannot starve another. A plain round-robin and a strict-
// priority discipline are included for comparison.
package sched

import (
	"fmt"
)

// Packet is one queued packet: its virtual network and wire size.
type Packet struct {
	VN    int
	Bytes int
}

// Discipline selects the service order.
type Discipline int

const (
	// DRR is Deficit Round Robin: byte-accurate weighted fairness with
	// O(1) dequeue, the classic router egress scheduler.
	DRR Discipline = iota
	// RR is packet-granularity round robin (unfair under mixed sizes).
	RR
	// Priority serves the lowest VN index first (no isolation).
	Priority
)

// String names the discipline.
func (d Discipline) String() string {
	switch d {
	case DRR:
		return "DRR"
	case RR:
		return "RR"
	case Priority:
		return "priority"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// Config parameterises a Scheduler.
type Config struct {
	K          int
	Discipline Discipline
	// Weights are the per-VN service shares (DRR quanta are derived from
	// them). Nil means equal shares.
	Weights []float64
	// QueueCap bounds each VN's queue in packets; 0 means 256.
	QueueCap int
}

// Stats reports a scheduling run.
type Stats struct {
	// ServedBytes and ServedPackets per VN.
	ServedBytes   []int64
	ServedPackets []int64
	// Dropped counts tail-dropped packets per VN.
	Dropped []int64
}

// Shares returns each VN's fraction of served bytes.
func (s Stats) Shares() []float64 {
	var total int64
	for _, b := range s.ServedBytes {
		total += b
	}
	out := make([]float64, len(s.ServedBytes))
	if total == 0 {
		return out
	}
	for i, b := range s.ServedBytes {
		out[i] = float64(b) / float64(total)
	}
	return out
}

// JainIndex returns Jain's fairness index over the per-VN service
// normalised by weight: 1 is perfectly weighted-fair, 1/K is maximally
// unfair.
func (s Stats) JainIndex(weights []float64) float64 {
	n := len(s.ServedBytes)
	if n == 0 {
		return 0
	}
	var sum, sumSq float64
	for i, b := range s.ServedBytes {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		if w <= 0 {
			continue
		}
		x := float64(b) / w
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}

// Scheduler is a K-queue egress scheduler.
type Scheduler struct {
	cfg     Config
	queues  [][]Packet
	quantum []int
	deficit []int
	next    int
	// granted marks that the queue at next already received its quantum
	// for the current visit.
	granted bool
	stats   Stats
}

// advance moves the round pointer to the next queue, opening a new visit.
func (s *Scheduler) advance() {
	s.next = (s.next + 1) % s.cfg.K
	s.granted = false
}

// New validates the configuration and builds a Scheduler.
func New(cfg Config) (*Scheduler, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("sched: K = %d, want > 0", cfg.K)
	}
	if cfg.Weights != nil && len(cfg.Weights) != cfg.K {
		return nil, fmt.Errorf("sched: %d weights for K = %d", len(cfg.Weights), cfg.K)
	}
	switch cfg.Discipline {
	case DRR, RR, Priority:
	default:
		return nil, fmt.Errorf("sched: unknown discipline %d", cfg.Discipline)
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 256
	}
	if cfg.QueueCap < 1 {
		return nil, fmt.Errorf("sched: queue capacity %d, want >= 1", cfg.QueueCap)
	}
	s := &Scheduler{
		cfg:     cfg,
		queues:  make([][]Packet, cfg.K),
		quantum: make([]int, cfg.K),
		deficit: make([]int, cfg.K),
		stats: Stats{
			ServedBytes:   make([]int64, cfg.K),
			ServedPackets: make([]int64, cfg.K),
			Dropped:       make([]int64, cfg.K),
		},
	}
	// DRR quantum: proportional to weight, floored at one MTU-ish unit so
	// every active queue progresses each round.
	const baseQuantum = 1500
	for i := 0; i < cfg.K; i++ {
		w := 1.0
		if cfg.Weights != nil {
			w = cfg.Weights[i]
			if w <= 0 {
				return nil, fmt.Errorf("sched: weight %g for VN %d, want > 0", w, i)
			}
		}
		s.quantum[i] = int(w * baseQuantum)
	}
	return s, nil
}

// Enqueue queues one packet, tail-dropping when the VN's queue is full.
func (s *Scheduler) Enqueue(p Packet) error {
	if p.VN < 0 || p.VN >= s.cfg.K {
		return fmt.Errorf("sched: VN %d outside [0,%d)", p.VN, s.cfg.K)
	}
	if p.Bytes <= 0 {
		return fmt.Errorf("sched: packet size %d, want > 0", p.Bytes)
	}
	if len(s.queues[p.VN]) >= s.cfg.QueueCap {
		s.stats.Dropped[p.VN]++
		return nil
	}
	s.queues[p.VN] = append(s.queues[p.VN], p)
	return nil
}

// Backlogged reports whether any queue holds packets.
func (s *Scheduler) Backlogged() bool {
	for _, q := range s.queues {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

// Dequeue removes and returns the next packet to transmit. ok is false when
// every queue is empty.
func (s *Scheduler) Dequeue() (Packet, bool) {
	switch s.cfg.Discipline {
	case Priority:
		for vn := 0; vn < s.cfg.K; vn++ {
			if len(s.queues[vn]) > 0 {
				return s.pop(vn), true
			}
		}
		return Packet{}, false
	case RR:
		for i := 0; i < s.cfg.K; i++ {
			vn := (s.next + i) % s.cfg.K
			if len(s.queues[vn]) > 0 {
				s.next = (vn + 1) % s.cfg.K
				return s.pop(vn), true
			}
		}
		return Packet{}, false
	default: // DRR
		if !s.Backlogged() {
			return Packet{}, false
		}
		for {
			vn := s.next
			if len(s.queues[vn]) == 0 {
				s.deficit[vn] = 0 // inactive queues accumulate nothing
				s.advance()
				continue
			}
			// Grant the quantum once per visit; within the visit the
			// queue drains as far as its deficit reaches.
			if !s.granted {
				s.deficit[vn] += s.quantum[vn]
				s.granted = true
			}
			if s.deficit[vn] < s.queues[vn][0].Bytes {
				s.advance() // deficit carries over to the next round
				continue
			}
			p := s.pop(vn)
			s.deficit[vn] -= p.Bytes
			if len(s.queues[vn]) == 0 {
				s.deficit[vn] = 0
				s.advance()
			}
			return p, true
		}
	}
}

// pop removes the head of vn's queue and accounts it.
func (s *Scheduler) pop(vn int) Packet {
	p := s.queues[vn][0]
	s.queues[vn] = s.queues[vn][1:]
	s.stats.ServedBytes[vn] += int64(p.Bytes)
	s.stats.ServedPackets[vn]++
	return p
}

// Stats returns the accumulated counters.
func (s *Scheduler) Stats() Stats { return s.stats }

// Drain runs the scheduler until every queue is empty, returning the
// packets in service order.
func (s *Scheduler) Drain() []Packet {
	var out []Packet
	for {
		p, ok := s.Dequeue()
		if !ok {
			return out
		}
		out = append(out, p)
	}
}
