package sched

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{K: 0},
		{K: 2, Weights: []float64{1}},
		{K: 2, Weights: []float64{1, 0}},
		{K: 2, Weights: []float64{1, -1}},
		{K: 2, Discipline: Discipline(9)},
		{K: 2, QueueCap: -1},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestEnqueueValidation(t *testing.T) {
	s, err := New(Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(Packet{VN: 5, Bytes: 40}); err == nil {
		t.Error("out-of-range VN accepted")
	}
	if err := s.Enqueue(Packet{VN: 0, Bytes: 0}); err == nil {
		t.Error("zero-size packet accepted")
	}
}

func TestTailDrop(t *testing.T) {
	s, err := New(Config{K: 1, QueueCap: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Enqueue(Packet{VN: 0, Bytes: 40}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().Dropped[0]; got != 2 {
		t.Errorf("dropped = %d, want 2", got)
	}
	if got := len(s.Drain()); got != 3 {
		t.Errorf("drained %d, want 3", got)
	}
}

func TestDRREqualWeightsFair(t *testing.T) {
	s, err := New(Config{K: 4, QueueCap: 10000})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// Heavy backlog with variable sizes; measure while all stay backlogged.
	for i := 0; i < 8000; i++ {
		s.Enqueue(Packet{VN: i % 4, Bytes: 40 + rng.Intn(1460)})
	}
	for i := 0; i < 6000; i++ {
		if _, ok := s.Dequeue(); !ok {
			t.Fatal("ran dry while backlogged")
		}
	}
	st := s.Stats()
	if j := st.JainIndex(nil); j < 0.999 {
		t.Errorf("Jain index %.4f, want ≈ 1 for equal weights", j)
	}
	shares := st.Shares()
	for vn, sh := range shares {
		if math.Abs(sh-0.25) > 0.01 {
			t.Errorf("vn %d share %.3f, want 0.25", vn, sh)
		}
	}
}

func TestDRRWeightedShares(t *testing.T) {
	weights := []float64{4, 2, 1, 1}
	s, err := New(Config{K: 4, Weights: weights, QueueCap: 10000})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 8000; i++ {
		s.Enqueue(Packet{VN: i % 4, Bytes: 40 + rng.Intn(1460)})
	}
	// Serve while every queue stays backlogged (the lightest-weighted VN
	// has ~2000 packets; 4000 dequeues cannot exhaust it).
	for i := 0; i < 4000; i++ {
		if _, ok := s.Dequeue(); !ok {
			t.Fatal("ran dry while backlogged")
		}
	}
	shares := s.Stats().Shares()
	want := []float64{0.5, 0.25, 0.125, 0.125}
	for vn := range want {
		if math.Abs(shares[vn]-want[vn]) > 0.02 {
			t.Errorf("vn %d share %.3f, want %.3f", vn, shares[vn], want[vn])
		}
	}
	if j := s.Stats().JainIndex(weights); j < 0.995 {
		t.Errorf("weighted Jain index %.4f, want ≈ 1", j)
	}
}

// TestQoSIsolation is the paper's transparency requirement: a flooding
// tenant must not take more than its weighted share while others are
// backlogged.
func TestQoSIsolation(t *testing.T) {
	s, err := New(Config{K: 3, QueueCap: 100000})
	if err != nil {
		t.Fatal(err)
	}
	// VN 0 floods 10x the offered load of VN 1 and 2.
	for i := 0; i < 30000; i++ {
		s.Enqueue(Packet{VN: 0, Bytes: 1500})
	}
	for i := 0; i < 3000; i++ {
		s.Enqueue(Packet{VN: 1, Bytes: 1500})
		s.Enqueue(Packet{VN: 2, Bytes: 1500})
	}
	// Serve only as long as everyone is backlogged: the first 9000
	// packets' worth of service must split evenly.
	var served [3]int64
	for i := 0; i < 8900; i++ {
		p, ok := s.Dequeue()
		if !ok {
			t.Fatal("scheduler ran dry while backlogged")
		}
		served[p.VN] += int64(p.Bytes)
	}
	total := served[0] + served[1] + served[2]
	for vn, b := range served {
		share := float64(b) / float64(total)
		if math.Abs(share-1.0/3) > 0.01 {
			t.Errorf("vn %d got %.3f of service under backlog, want 1/3 (flood must not pay)", vn, share)
		}
	}
}

func TestRRUnfairUnderMixedSizes(t *testing.T) {
	// Round robin serves packets, not bytes: a VN sending jumbo frames
	// grabs more bandwidth — which is why DRR exists.
	mk := func(d Discipline) Stats {
		s, err := New(Config{K: 2, Discipline: d, QueueCap: 10000})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4000; i++ {
			s.Enqueue(Packet{VN: 0, Bytes: 1500})
			s.Enqueue(Packet{VN: 1, Bytes: 64})
		}
		// Measure service while BOTH queues stay backlogged; a full drain
		// would only reflect the offered load.
		for i := 0; i < 3000; i++ {
			if _, ok := s.Dequeue(); !ok {
				t.Fatal("ran dry while backlogged")
			}
		}
		return s.Stats()
	}
	rr := mk(RR).Shares()
	drr := mk(DRR).Shares()
	if rr[0] < 0.9 {
		t.Errorf("RR: jumbo VN share %.3f, want ≈ 0.96 (packet fairness != byte fairness)", rr[0])
	}
	if math.Abs(drr[0]-0.5) > 0.02 {
		t.Errorf("DRR: jumbo VN share %.3f, want 0.5 (byte fairness)", drr[0])
	}
}

func TestPriorityStarves(t *testing.T) {
	s, err := New(Config{K: 2, Discipline: Priority, QueueCap: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Enqueue(Packet{VN: 0, Bytes: 40})
		s.Enqueue(Packet{VN: 1, Bytes: 40})
	}
	for i := 0; i < 100; i++ {
		p, ok := s.Dequeue()
		if !ok || p.VN != 0 {
			t.Fatalf("dequeue %d: got vn %d, want strict priority to vn 0", i, p.VN)
		}
	}
}

func TestWorkConservation(t *testing.T) {
	s, err := New(Config{K: 3, QueueCap: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Only VN 2 has traffic; the scheduler must serve it at full rate.
	for i := 0; i < 500; i++ {
		s.Enqueue(Packet{VN: 2, Bytes: 777})
	}
	out := s.Drain()
	if len(out) != 500 {
		t.Fatalf("drained %d, want 500", len(out))
	}
	if _, ok := s.Dequeue(); ok {
		t.Error("Dequeue on empty scheduler returned a packet")
	}
	if s.Backlogged() {
		t.Error("Backlogged true after drain")
	}
}

func TestDisciplineString(t *testing.T) {
	if DRR.String() != "DRR" || RR.String() != "RR" || Priority.String() != "priority" {
		t.Error("discipline names wrong")
	}
}
