// Package stats provides the small numeric helpers the calibration tests
// and benchmark harness use: summaries, percent error and least-squares
// line fits (for verifying the linear power-vs-frequency relationships of
// Figures 2 and 3).
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MinMax returns the extrema; zeros for an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// MaxAbs returns the largest absolute value; 0 for an empty slice.
func MaxAbs(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// PercentError returns (got-want)/want*100; 0 when want is 0.
func PercentError(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	return (got - want) / want * 100
}

// LinFit fits y = a + b·x by least squares and returns the coefficients and
// the coefficient of determination R².
func LinFit(x, y []float64) (a, b, r2 float64, err error) {
	n := len(x)
	if n != len(y) {
		return 0, 0, 0, fmt.Errorf("stats: length mismatch %d vs %d", n, len(y))
	}
	if n < 2 {
		return 0, 0, 0, fmt.Errorf("stats: need >= 2 points, got %d", n)
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, fmt.Errorf("stats: degenerate x (zero variance)")
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		return a, b, 1, nil // constant y fits exactly
	}
	var ssRes float64
	for i := range x {
		r := y[i] - (a + b*x[i])
		ssRes += r * r
	}
	r2 = 1 - ssRes/syy
	return a, b, r2, nil
}
