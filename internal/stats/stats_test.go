package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %g, want 2.5", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %g,%g", min, max)
	}
	if a, b := MinMax(nil); a != 0 || b != 0 {
		t.Error("MinMax(nil) != 0,0")
	}
}

func TestMaxAbs(t *testing.T) {
	if got := MaxAbs([]float64{-3, 2}); got != 3 {
		t.Errorf("MaxAbs = %g, want 3", got)
	}
	if MaxAbs(nil) != 0 {
		t.Error("MaxAbs(nil) != 0")
	}
}

func TestPercentError(t *testing.T) {
	if got := PercentError(103, 100); got != 3 {
		t.Errorf("PercentError = %g, want 3", got)
	}
	if PercentError(5, 0) != 0 {
		t.Error("PercentError(_,0) != 0")
	}
}

func TestLinFitExact(t *testing.T) {
	x := []float64{100, 200, 300, 400}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 2.5 + 13.65*v
	}
	a, b, r2, err := LinFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-2.5) > 1e-9 || math.Abs(b-13.65) > 1e-9 {
		t.Errorf("fit = %g + %g x", a, b)
	}
	if r2 < 0.999999 {
		t.Errorf("R² = %g, want 1", r2)
	}
}

func TestLinFitErrors(t *testing.T) {
	if _, _, _, err := LinFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, _, err := LinFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, _, err := LinFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("zero-variance x accepted")
	}
}

func TestLinFitConstantY(t *testing.T) {
	a, b, r2, err := LinFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if a != 5 || b != 0 || r2 != 1 {
		t.Errorf("constant fit = %g + %g x, R²=%g", a, b, r2)
	}
}

// Property: the least-squares residual of the fitted line never exceeds the
// residual of the mean-only model (R² >= 0).
func TestLinFitR2NonNegative(t *testing.T) {
	f := func(seed uint32) bool {
		n := 3 + int(seed%8)
		x := make([]float64, n)
		y := make([]float64, n)
		s := float64(seed)
		for i := range x {
			x[i] = float64(i) + 1
			s = math.Mod(s*9301+49297, 233280)
			y[i] = s / 1000
		}
		_, _, r2, err := LinFit(x, y)
		if err != nil {
			return false
		}
		return r2 >= -1e-9 && r2 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
