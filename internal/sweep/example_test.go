package sweep_test

import (
	"fmt"

	"vrpower/internal/sweep"
)

// Run fans the points out over the bounded worker pool and reassembles the
// results in point order, so the output never depends on which worker
// finished first — the property the figure sweeps rely on for byte-identical
// golden files at any -j.
func ExampleRun() {
	squares, err := sweep.Run(6, func(point int) (int, error) {
		return point * point, nil
	})
	fmt.Println(squares, err)
	// Output: [0 1 4 9 16 25] <nil>
}

// RunN pins an explicit pool size; grid points map to (row, column) by
// integer division, the same flattening the experiment sweeps use.
func ExampleRunN() {
	ks := []int{1, 2, 4}
	schemes := []string{"VS", "VM"}
	labels, err := sweep.RunN(2, len(schemes)*len(ks), func(p int) (string, error) {
		return fmt.Sprintf("%s/K=%d", schemes[p/len(ks)], ks[p%len(ks)]), nil
	})
	fmt.Println(labels, err)
	// Output: [VS/K=1 VS/K=2 VS/K=4 VM/K=1 VM/K=2 VM/K=4] <nil>
}
