// Package sweep is the bounded concurrent sweep engine behind the
// experiment drivers: it fans independent grid points out over a fixed-size
// worker pool and reassembles the results in deterministic point order, so
// a parallel run is byte-identical to a sequential one. The pool size
// defaults to runtime.GOMAXPROCS and is overridden process-wide by the
// cmd tools' -j flag via SetWorkers.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers holds the SetWorkers override; 0 means "use GOMAXPROCS".
var defaultWorkers atomic.Int32

// SetWorkers fixes the default pool size used by Run. n <= 0 restores the
// default of runtime.GOMAXPROCS(0). It is safe to call concurrently with
// running sweeps; in-flight pools keep the size they started with.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// Workers reports the pool size Run will use next.
func Workers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Run evaluates fn over the points [0, n) on the default-sized worker pool
// and returns the results in point order. See RunN.
func Run[T any](n int, fn func(point int) (T, error)) ([]T, error) {
	return RunN(0, n, fn)
}

// RunN evaluates fn over the points [0, n) using at most workers goroutines
// (workers <= 0 means the package default). Results are reassembled in
// point order regardless of completion order, so the output is identical to
// a sequential loop over the same points. fn must therefore be
// deterministic per point and must not depend on evaluation order.
//
// Every point is evaluated even when another fails; on failure the error of
// the lowest-numbered failing point is returned (again independent of
// scheduling), wrapped with its point number, alongside a nil slice.
func RunN[T any](workers, n int, fn func(point int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("sweep: %d points", n)
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	errs := make([]error, n)
	if workers <= 1 {
		// Degenerate pool: run inline. Same all-points semantics as the
		// concurrent path so -j 1 matches -j N even on the error path.
		for i := 0; i < n; i++ {
			out[i], errs[i] = fn(i)
		}
	} else {
		points := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range points {
					out[i], errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			points <- i
		}
		close(points)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep point %d: %w", i, err)
		}
	}
	return out, nil
}
