package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunNOrdersResults(t *testing.T) {
	// Finish points in reverse order on purpose: later points sleep less.
	const n = 32
	got, err := RunN(8, n, func(p int) (int, error) {
		time.Sleep(time.Duration(n-p) * 100 * time.Microsecond)
		return p * p, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("point %d = %d, want %d (results out of order)", i, v, i*i)
		}
	}
}

func TestRunNMatchesSequential(t *testing.T) {
	fn := func(p int) (string, error) { return fmt.Sprintf("pt%03d", p), nil }
	seq, err := RunN(1, 50, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunN(8, 50, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("point %d: sequential %q vs parallel %q", i, seq[i], par[i])
		}
	}
}

func TestRunNErrorIsLowestPoint(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := RunN(workers, 20, func(p int) (int, error) {
			if p == 7 || p == 13 {
				return 0, boom
			}
			return p, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		if want := "sweep point 7: boom"; err.Error() != want {
			t.Fatalf("workers=%d: err = %q, want %q (lowest failing point)", workers, err, want)
		}
	}
}

func TestRunNEvaluatesEveryPointDespiteError(t *testing.T) {
	var calls atomic.Int64
	_, err := RunN(4, 16, func(p int) (int, error) {
		calls.Add(1)
		if p == 0 {
			return 0, errors.New("early")
		}
		return p, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if calls.Load() != 16 {
		t.Fatalf("evaluated %d points, want all 16", calls.Load())
	}
}

func TestRunNBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, max atomic.Int64
	_, err := RunN(workers, 64, func(p int) (int, error) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		cur.Add(-1)
		return p, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > workers {
		t.Fatalf("observed %d concurrent points, pool bound is %d", m, workers)
	}
}

func TestRunNDegenerateInputs(t *testing.T) {
	if out, err := RunN(4, 0, func(int) (int, error) { return 0, nil }); err != nil || len(out) != 0 {
		t.Fatalf("n=0: out=%v err=%v, want empty, nil", out, err)
	}
	if _, err := RunN(4, -1, func(int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("n=-1: expected error")
	}
}

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d after reset, want GOMAXPROCS %d", Workers(), runtime.GOMAXPROCS(0))
	}
	SetWorkers(-5) // negative behaves like reset
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d after SetWorkers(-5), want GOMAXPROCS", Workers())
	}
}

func TestRunUsesDefaultPool(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(2)
	var cur, max atomic.Int64
	_, err := Run(16, func(p int) (int, error) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		cur.Add(-1)
		return p, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > 2 {
		t.Fatalf("observed %d concurrent points with SetWorkers(2)", m)
	}
}

// spin burns CPU deterministically so the benchmark's speedup reflects the
// pool, not the scheduler.
func spin(iters int) float64 {
	x := 1.0001
	for i := 0; i < iters; i++ {
		x = x*x - 1.0001
		if x > 2 {
			x -= 2
		}
	}
	return x
}

// BenchmarkRunWorkers shows the pool scaling on CPU-bound points: j=1 is
// the sequential baseline, j=GOMAXPROCS should run measurably faster on any
// multicore host.
func BenchmarkRunWorkers(b *testing.B) {
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("j=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunN(w, 64, func(p int) (float64, error) {
					return spin(200_000), nil
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
