// Package tcam implements the Ternary CAM lookup baseline the paper
// positions trie pipelines against (Section II): a priority-ordered
// ternary match array whose every cell participates in every search —
// which is exactly why "TCAMs are known to be power hungry due to its
// massively parallel search". The package provides the plain full-search
// TCAM, the block-partitioned variant of Zheng et al. [20] (only the
// indexed block fires per search), and a per-search energy model, so the
// repo can reproduce the trie-vs-TCAM power argument quantitatively.
package tcam

import (
	"fmt"
	"sort"

	"vrpower/internal/ip"
	"vrpower/internal/rib"
)

// Entry is one ternary row: a value/mask pair with its next hop. Priority
// is implicit in storage order (first match wins), so longest prefixes are
// stored first.
type Entry struct {
	Value   ip.Addr
	Mask    ip.Addr
	Len     int
	NextHop ip.NextHop
}

// Matches reports whether addr matches the entry's value under its mask.
func (e Entry) Matches(addr ip.Addr) bool {
	return addr&e.Mask == e.Value
}

// TCAM is a priority-ordered ternary match array over IPv4 prefixes.
type TCAM struct {
	entries []Entry
}

// Build loads a routing table, ordering entries longest-prefix-first so
// that first-match equals longest-prefix match.
func Build(tbl *rib.Table) *TCAM {
	t := &TCAM{entries: make([]Entry, 0, tbl.Len())}
	for _, r := range tbl.Routes {
		t.entries = append(t.entries, Entry{
			Value:   r.Prefix.Addr,
			Mask:    ip.Mask(r.Prefix.Len),
			Len:     r.Prefix.Len,
			NextHop: r.NextHop,
		})
	}
	sort.SliceStable(t.entries, func(i, j int) bool {
		return t.entries[i].Len > t.entries[j].Len
	})
	return t
}

// Len returns the number of entries.
func (t *TCAM) Len() int { return len(t.entries) }

// Lookup returns the first (highest-priority) matching entry's next hop —
// the hardware's parallel match followed by a priority encoder.
func (t *TCAM) Lookup(addr ip.Addr) ip.NextHop {
	for _, e := range t.entries {
		if e.Matches(addr) {
			return e.NextHop
		}
	}
	return ip.NoRoute
}

// CellsPerEntry is the ternary cell count of one IPv4 entry (32 bits of
// value+mask match logic).
const CellsPerEntry = 32

// ActiveCells returns the number of ternary cells that fire on every
// search: all of them, in the plain TCAM.
func (t *TCAM) ActiveCells() int { return len(t.entries) * CellsPerEntry }

// Partitioned is the load-balanced multi-block organisation of [20]: the
// entry space is split into 2^IndexBits blocks by the first address bits,
// and a search fires only the indexed block, cutting dynamic power by
// roughly the block count. Prefixes shorter than the index are expanded
// (controlled prefix expansion) so that indexing never misses a match.
type Partitioned struct {
	indexBits int
	blocks    [][]Entry
	entries   int
}

// BuildPartitioned loads a table into 2^indexBits blocks.
func BuildPartitioned(tbl *rib.Table, indexBits int) (*Partitioned, error) {
	if indexBits < 1 || indexBits > 16 {
		return nil, fmt.Errorf("tcam: index bits %d outside [1,16]", indexBits)
	}
	p := &Partitioned{
		indexBits: indexBits,
		blocks:    make([][]Entry, 1<<indexBits),
	}
	for _, r := range tbl.Routes {
		// Controlled prefix expansion to at least indexBits.
		if r.Prefix.Len >= indexBits {
			idx := int(r.Prefix.Addr >> (32 - uint(indexBits)))
			p.blocks[idx] = append(p.blocks[idx], Entry{
				Value:   r.Prefix.Addr,
				Mask:    ip.Mask(r.Prefix.Len),
				Len:     r.Prefix.Len,
				NextHop: r.NextHop,
			})
			p.entries++
			continue
		}
		span := 1 << uint(indexBits-r.Prefix.Len)
		base := int(r.Prefix.Addr >> (32 - uint(indexBits)))
		for i := 0; i < span; i++ {
			idx := base + i
			expanded := ip.Addr(uint32(idx) << (32 - uint(indexBits)))
			p.blocks[idx] = append(p.blocks[idx], Entry{
				Value: expanded,
				Mask:  ip.Mask(indexBits),
				// Keep the ORIGINAL length for priority: an expanded /8
				// must still lose to a genuine /20 in its block.
				Len:     r.Prefix.Len,
				NextHop: r.NextHop,
			})
			p.entries++
		}
	}
	for idx := range p.blocks {
		b := p.blocks[idx]
		sort.SliceStable(b, func(i, j int) bool { return b[i].Len > b[j].Len })
	}
	return p, nil
}

// Len returns the stored entry count, including expansion copies.
func (p *Partitioned) Len() int { return p.entries }

// Blocks returns the number of blocks.
func (p *Partitioned) Blocks() int { return len(p.blocks) }

// Lookup fires only the indexed block.
func (p *Partitioned) Lookup(addr ip.Addr) ip.NextHop {
	idx := int(addr >> (32 - uint(p.indexBits)))
	for _, e := range p.blocks[idx] {
		if e.Matches(addr) {
			return e.NextHop
		}
	}
	return ip.NoRoute
}

// ActiveCells returns the worst-case cells fired per search: the largest
// block (the hardware sizes every block's power rail for it).
func (p *Partitioned) ActiveCells() int {
	max := 0
	for _, b := range p.blocks {
		if len(b) > max {
			max = len(b)
		}
	}
	return max * CellsPerEntry
}

// MaxBlockLoad returns the population of the fullest block relative to a
// perfectly balanced split — the load-balancing quality metric of [20].
func (p *Partitioned) MaxBlockLoad() float64 {
	if p.entries == 0 {
		return 0
	}
	max := 0
	for _, b := range p.blocks {
		if len(b) > max {
			max = len(b)
		}
	}
	mean := float64(p.entries) / float64(len(p.blocks))
	return float64(max) / mean
}

// PowerModel converts fired ternary cells into Watts.
type PowerModel struct {
	// SearchJoulePerCell is the dynamic energy of one ternary cell per
	// search. The default is calibrated so an 18 Mb TCAM at 143 M
	// searches/s draws ≈ 15 W, the class of figures [20]-era parts
	// report ("TCAMs are known to be power hungry").
	SearchJoulePerCell float64
	// IdleWattsPerMbit is the static burn of powered TCAM array.
	IdleWattsPerMbit float64
}

// DefaultPowerModel returns the calibrated TCAM energy coefficients.
func DefaultPowerModel() PowerModel {
	return PowerModel{
		SearchJoulePerCell: 5.8e-15,
		IdleWattsPerMbit:   0.15,
	}
}

// Searcher is any TCAM organisation that reports fired cells per search
// and stored entries.
type Searcher interface {
	ActiveCells() int
	Len() int
}

var (
	_ Searcher = (*TCAM)(nil)
	_ Searcher = (*Partitioned)(nil)
)

// DynamicWatts returns search power at fMHz million searches per second.
func (m PowerModel) DynamicWatts(t Searcher, fMHz float64) float64 {
	return float64(t.ActiveCells()) * m.SearchJoulePerCell * fMHz * 1e6
}

// StaticWatts returns the array's idle power from its stored size.
func (m PowerModel) StaticWatts(t Searcher) float64 {
	mbit := float64(t.Len()*CellsPerEntry) / 1e6
	return mbit * m.IdleWattsPerMbit
}

// TotalWatts returns static plus dynamic power.
func (m PowerModel) TotalWatts(t Searcher, fMHz float64) float64 {
	return m.StaticWatts(t) + m.DynamicWatts(t, fMHz)
}
