package tcam

import (
	"math/rand"
	"testing"

	"vrpower/internal/ip"
	"vrpower/internal/rib"
)

func genTable(t *testing.T, n int, seed int64) *rib.Table {
	t.Helper()
	tbl, err := rib.Generate("t", rib.DefaultGen(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestLookupMatchesReference(t *testing.T) {
	tbl := genTable(t, 800, 1)
	tc := Build(tbl)
	ref := tbl.Reference()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		addr := ip.Addr(rng.Uint32())
		if got, want := tc.Lookup(addr), ref.Lookup(addr); got != want {
			t.Fatalf("Lookup(%s) = %d, want %d", addr, got, want)
		}
	}
}

func TestLookupTargeted(t *testing.T) {
	// Nested prefixes stress priority ordering.
	tbl := &rib.Table{Name: "nest"}
	for _, r := range []struct {
		p  string
		nh ip.NextHop
	}{
		{"0.0.0.0/0", 1},
		{"10.0.0.0/8", 2},
		{"10.1.0.0/16", 3},
		{"10.1.2.0/24", 4},
	} {
		p, _ := ip.ParsePrefix(r.p)
		tbl.Add(ip.Route{Prefix: p, NextHop: r.nh})
	}
	tc := Build(tbl)
	cases := []struct {
		addr string
		want ip.NextHop
	}{
		{"10.1.2.3", 4},
		{"10.1.9.9", 3},
		{"10.9.9.9", 2},
		{"11.0.0.1", 1},
	}
	for _, c := range cases {
		addr, _ := ip.ParseAddr(c.addr)
		if got := tc.Lookup(addr); got != c.want {
			t.Errorf("Lookup(%s) = %d, want %d", c.addr, got, c.want)
		}
	}
}

func TestPartitionedMatchesPlain(t *testing.T) {
	tbl := genTable(t, 1000, 3)
	tc := Build(tbl)
	for _, bits := range []int{4, 8, 12} {
		p, err := BuildPartitioned(tbl, bits)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < 4000; i++ {
			addr := ip.Addr(rng.Uint32())
			if got, want := p.Lookup(addr), tc.Lookup(addr); got != want {
				t.Fatalf("bits=%d: Lookup(%s) = %d, want %d", bits, addr, got, want)
			}
		}
	}
}

func TestPartitionedShortPrefixExpansion(t *testing.T) {
	tbl := &rib.Table{Name: "short"}
	p0, _ := ip.ParsePrefix("0.0.0.0/0")
	p8, _ := ip.ParsePrefix("10.0.0.0/8")
	p24, _ := ip.ParsePrefix("10.1.2.0/24")
	tbl.Add(ip.Route{Prefix: p0, NextHop: 1})
	tbl.Add(ip.Route{Prefix: p8, NextHop: 2})
	tbl.Add(ip.Route{Prefix: p24, NextHop: 3})
	pt, err := BuildPartitioned(tbl, 12)
	if err != nil {
		t.Fatal(err)
	}
	// /0 expands to 4096 copies, /8 to 16, /24 stays single.
	if want := 4096 + 16 + 1; pt.Len() != want {
		t.Errorf("expanded entries = %d, want %d", pt.Len(), want)
	}
	for _, c := range []struct {
		addr string
		want ip.NextHop
	}{
		{"10.1.2.200", 3},
		{"10.200.0.1", 2},
		{"200.0.0.1", 1},
	} {
		addr, _ := ip.ParseAddr(c.addr)
		if got := pt.Lookup(addr); got != c.want {
			t.Errorf("Lookup(%s) = %d, want %d", c.addr, got, c.want)
		}
	}
}

func TestBuildPartitionedValidation(t *testing.T) {
	tbl := genTable(t, 10, 5)
	if _, err := BuildPartitioned(tbl, 0); err == nil {
		t.Error("indexBits 0 accepted")
	}
	if _, err := BuildPartitioned(tbl, 17); err == nil {
		t.Error("indexBits 17 accepted")
	}
}

func TestPartitionedCutsActiveCells(t *testing.T) {
	tbl := genTable(t, 2000, 6)
	tc := Build(tbl)
	pt, err := BuildPartitioned(tbl, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pt.ActiveCells() >= tc.ActiveCells()/4 {
		t.Errorf("partitioned fires %d cells, plain %d; want a large cut",
			pt.ActiveCells(), tc.ActiveCells())
	}
	if pt.Blocks() != 256 {
		t.Errorf("Blocks = %d, want 256", pt.Blocks())
	}
	if load := pt.MaxBlockLoad(); load < 1 {
		t.Errorf("MaxBlockLoad = %.2f, want >= 1", load)
	}
}

func TestPowerModelScalesWithTableAndRate(t *testing.T) {
	m := DefaultPowerModel()
	small := Build(genTable(t, 500, 7))
	large := Build(genTable(t, 3725, 7))
	if m.DynamicWatts(large, 150) <= m.DynamicWatts(small, 150) {
		t.Error("TCAM dynamic power must grow with table size (full parallel search)")
	}
	if m.DynamicWatts(small, 300) <= m.DynamicWatts(small, 150) {
		t.Error("TCAM dynamic power must grow with search rate")
	}
	if m.StaticWatts(large) <= m.StaticWatts(small) {
		t.Error("TCAM static power must grow with stored bits")
	}
	tot := m.TotalWatts(small, 150)
	if tot != m.StaticWatts(small)+m.DynamicWatts(small, 150) {
		t.Error("TotalWatts != static + dynamic")
	}
}

func TestPowerCalibration18Mb(t *testing.T) {
	// The calibration anchor: an 18 Mb array at 143 M searches/s should
	// land near the ~15 W reported for the era's parts ([20]).
	m := DefaultPowerModel()
	entries := 18_000_000 / CellsPerEntry
	fake := &TCAM{entries: make([]Entry, entries)}
	w := m.DynamicWatts(fake, 143)
	if w < 10 || w > 20 {
		t.Errorf("18 Mb TCAM at 143 MHz = %.1f W, want 10-20 W", w)
	}
}

func TestPartitionedPowerAdvantage(t *testing.T) {
	// Reproduce the [20] argument: partitioning cuts dynamic power by
	// roughly the block count over the balanced portion.
	tbl := genTable(t, 3725, 8)
	m := DefaultPowerModel()
	plain := Build(tbl)
	pt, err := BuildPartitioned(tbl, 8)
	if err != nil {
		t.Fatal(err)
	}
	ratio := m.DynamicWatts(plain, 150) / m.DynamicWatts(pt, 150)
	if ratio < 5 {
		t.Errorf("partitioning saves only %.1fx dynamic power, want > 5x", ratio)
	}
}
