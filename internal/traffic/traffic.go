// Package traffic generates the packet workloads that drive the lookup
// engines: VNID-tagged packets distributed across K virtual networks
// (uniform per Assumption 1, or weighted/Zipf for the more complex
// distributions the paper mentions can be modelled by changing µ_i),
// destination addresses drawn either uniformly or from the routed space,
// and duty-cycled arrival slots for the clock-gating experiments.
package traffic

import (
	"fmt"
	"math/rand"

	"vrpower/internal/ip"
	"vrpower/internal/packet"
	"vrpower/internal/pipeline"
	"vrpower/internal/rib"
)

// Packet is one generated packet.
type Packet struct {
	Addr ip.Addr
	VN   int
	// SizeBytes is the wire size; the paper's throughput metric assumes
	// 40-byte minimum packets (Section VI-B).
	SizeBytes int
}

// VNDist selects how packets spread over the K virtual networks.
type VNDist int

const (
	// Uniform is Assumption 1: µ_i = 1/K.
	Uniform VNDist = iota
	// Weighted uses explicit per-VN weights.
	Weighted
	// Zipf skews traffic toward low-numbered VNs.
	Zipf
)

// AddrModel selects how destination addresses are drawn.
type AddrModel int

const (
	// UniformAddr draws addresses uniformly from the IPv4 space; most
	// miss the routed space and resolve at shallow leaves.
	UniformAddr AddrModel = iota
	// RoutedAddr draws addresses covered by the VN's routing table,
	// exercising deep trie paths.
	RoutedAddr
)

// Config parameterises a Generator.
type Config struct {
	K    int
	Seed int64
	Dist VNDist
	// Weights are the per-VN selection weights for Weighted.
	Weights []float64
	// ZipfS is the Zipf skew parameter (> 1) for Zipf.
	ZipfS float64
	Addr  AddrModel
	// Tables provides the routed space for RoutedAddr (one per VN).
	Tables []*rib.Table
	// MinBytes and MaxBytes bound packet sizes; both default to the
	// 40-byte minimum when zero.
	MinBytes, MaxBytes int
	// DutyCycle is the probability a slot carries a packet (Slots only),
	// in (0, 1]. Zero defaults to 1.
	DutyCycle float64
}

// Generator produces a deterministic packet stream.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
	cum  []float64
}

// New validates the configuration and builds a Generator.
func New(cfg Config) (*Generator, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("traffic: K = %d, want > 0", cfg.K)
	}
	if cfg.MinBytes == 0 {
		cfg.MinBytes = 40
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = cfg.MinBytes
	}
	if cfg.MinBytes < 1 || cfg.MaxBytes < cfg.MinBytes {
		return nil, fmt.Errorf("traffic: bad packet size bounds [%d,%d]", cfg.MinBytes, cfg.MaxBytes)
	}
	if cfg.DutyCycle == 0 {
		cfg.DutyCycle = 1
	}
	if cfg.DutyCycle < 0 || cfg.DutyCycle > 1 {
		return nil, fmt.Errorf("traffic: duty cycle %g outside (0,1]", cfg.DutyCycle)
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	switch cfg.Dist {
	case Weighted:
		if len(cfg.Weights) != cfg.K {
			return nil, fmt.Errorf("traffic: %d weights for K = %d", len(cfg.Weights), cfg.K)
		}
		var sum float64
		for i, w := range cfg.Weights {
			if w < 0 {
				return nil, fmt.Errorf("traffic: negative weight %g at %d", w, i)
			}
			sum += w
		}
		if sum <= 0 {
			return nil, fmt.Errorf("traffic: weights sum to %g, want > 0", sum)
		}
		g.cum = make([]float64, cfg.K)
		acc := 0.0
		for i, w := range cfg.Weights {
			acc += w / sum
			g.cum[i] = acc
		}
	case Zipf:
		s := cfg.ZipfS
		if s == 0 {
			s = 1.2
		}
		if s <= 1 {
			return nil, fmt.Errorf("traffic: Zipf s = %g, want > 1", s)
		}
		g.zipf = rand.NewZipf(g.rng, s, 1, uint64(cfg.K-1))
	case Uniform:
	default:
		return nil, fmt.Errorf("traffic: unknown distribution %d", cfg.Dist)
	}
	if cfg.Addr == RoutedAddr {
		if len(cfg.Tables) != cfg.K {
			return nil, fmt.Errorf("traffic: RoutedAddr needs %d tables, got %d", cfg.K, len(cfg.Tables))
		}
		for i, t := range cfg.Tables {
			if t.Len() == 0 {
				return nil, fmt.Errorf("traffic: table %d is empty", i)
			}
		}
	}
	return g, nil
}

// pickVN draws the packet's virtual network.
func (g *Generator) pickVN() int {
	switch g.cfg.Dist {
	case Weighted:
		r := g.rng.Float64()
		for i, c := range g.cum {
			if r <= c {
				return i
			}
		}
		return g.cfg.K - 1
	case Zipf:
		return int(g.zipf.Uint64())
	default:
		return g.rng.Intn(g.cfg.K)
	}
}

// pickAddr draws the destination address for the chosen VN.
func (g *Generator) pickAddr(vn int) ip.Addr {
	if g.cfg.Addr == RoutedAddr {
		t := g.cfg.Tables[vn]
		r := t.Routes[g.rng.Intn(t.Len())]
		host := ip.Addr(g.rng.Uint32()) &^ ip.Mask(r.Prefix.Len)
		return r.Prefix.Addr | host
	}
	return ip.Addr(g.rng.Uint32())
}

// Next generates one packet.
func (g *Generator) Next() Packet {
	vn := g.pickVN()
	size := g.cfg.MinBytes
	if g.cfg.MaxBytes > g.cfg.MinBytes {
		size += g.rng.Intn(g.cfg.MaxBytes - g.cfg.MinBytes + 1)
	}
	return Packet{Addr: g.pickAddr(vn), VN: vn, SizeBytes: size}
}

// Batch generates n packets.
func (g *Generator) Batch(n int) []Packet {
	out := make([]Packet, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Requests generates n pipeline lookup requests.
func (g *Generator) Requests(n int) []pipeline.Request {
	out := make([]pipeline.Request, n)
	for i := range out {
		p := g.Next()
		out[i] = pipeline.Request{Addr: p.Addr, VN: p.VN}
	}
	return out
}

// Slots generates n arrival slots honouring the configured duty cycle: a
// nil slot is an idle cycle. The fraction of non-nil slots converges to
// DutyCycle.
func (g *Generator) Slots(n int) []*Packet {
	out := make([]*Packet, n)
	for i := range out {
		if g.rng.Float64() <= g.cfg.DutyCycle {
			p := g.Next()
			out[i] = &p
		}
	}
	return out
}

// Share returns the measured fraction of packets per VN, for checking a
// stream against the intended µ_i.
func Share(pkts []Packet, k int) []float64 {
	counts := make([]float64, k)
	for _, p := range pkts {
		if p.VN >= 0 && p.VN < k {
			counts[p.VN]++
		}
	}
	if len(pkts) > 0 {
		for i := range counts {
			counts[i] /= float64(len(pkts))
		}
	}
	return counts
}

// Frames generates n wire-format frames (Ethernet + VLAN VNID + IPv4) for
// the frame-level forwarding path. TTLs vary over [2, 64]; the VLAN VID
// carries the packet's virtual network.
func (g *Generator) Frames(n int) ([][]byte, error) {
	out := make([][]byte, n)
	for i := range out {
		p := g.Next()
		src := ip.Addr(g.rng.Uint32())
		ttl := 2 + g.rng.Intn(63)
		payload := p.SizeBytes - packet.IPv4HeaderLen
		if payload < 0 {
			payload = 0
		}
		f, err := packet.Build(
			packet.MAC{0x02, 0, 0, 0, 0, 0x01},
			packet.MAC{0x02, 0, 0, 0, 0, 0x02},
			p.VN, 0, src, p.Addr, ttl, payload)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

// Bernoulli draws one deterministic coin with probability p from the
// generator's stream, for open-loop arrival processes.
func (g *Generator) Bernoulli(p float64) bool {
	return g.rng.Float64() < p
}

// NextFor generates one packet pinned to the given virtual network,
// bypassing the VN distribution (for per-VN arrival processes).
func (g *Generator) NextFor(vn int) Packet {
	size := g.cfg.MinBytes
	if g.cfg.MaxBytes > g.cfg.MinBytes {
		size += g.rng.Intn(g.cfg.MaxBytes - g.cfg.MinBytes + 1)
	}
	return Packet{Addr: g.pickAddr(vn), VN: vn, SizeBytes: size}
}
