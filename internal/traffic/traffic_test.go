package traffic

import (
	"math"
	"testing"

	"vrpower/internal/ip"
	"vrpower/internal/rib"
)

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{K: 0},
		{K: 2, MinBytes: -1},
		{K: 2, MinBytes: 100, MaxBytes: 50},
		{K: 2, DutyCycle: 1.5},
		{K: 2, DutyCycle: -0.5},
		{K: 2, Dist: Weighted}, // missing weights
		{K: 2, Dist: Weighted, Weights: []float64{1, -1}},  // negative
		{K: 2, Dist: Weighted, Weights: []float64{0, 0}},   // zero sum
		{K: 2, Dist: Zipf, ZipfS: 0.5},                     // s <= 1
		{K: 2, Dist: VNDist(99)},                           // unknown
		{K: 2, Addr: RoutedAddr},                           // missing tables
		{K: 1, Addr: RoutedAddr, Tables: []*rib.Table{{}}}, // empty table
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %d accepted, want error: %+v", i, c)
		}
	}
}

func TestDeterministic(t *testing.T) {
	mk := func() *Generator {
		g, err := New(Config{K: 4, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := mk().Batch(100), mk().Batch(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d differs with same seed", i)
		}
	}
}

func TestUniformShares(t *testing.T) {
	g, err := New(Config{K: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	shares := Share(g.Batch(40000), 8)
	for vn, s := range shares {
		if math.Abs(s-0.125) > 0.02 {
			t.Errorf("vn %d share %.3f, want 0.125 ± 0.02 (Assumption 1)", vn, s)
		}
	}
}

func TestWeightedShares(t *testing.T) {
	g, err := New(Config{K: 3, Seed: 2, Dist: Weighted, Weights: []float64{6, 3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	shares := Share(g.Batch(60000), 3)
	want := []float64{0.6, 0.3, 0.1}
	for vn := range want {
		if math.Abs(shares[vn]-want[vn]) > 0.02 {
			t.Errorf("vn %d share %.3f, want %.2f", vn, shares[vn], want[vn])
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g, err := New(Config{K: 6, Seed: 3, Dist: Zipf, ZipfS: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	shares := Share(g.Batch(30000), 6)
	if shares[0] <= shares[5] {
		t.Errorf("Zipf: vn0 share %.3f not above vn5 share %.3f", shares[0], shares[5])
	}
	if shares[0] < 0.4 {
		t.Errorf("Zipf s=1.5: head share %.3f, want dominant", shares[0])
	}
}

func TestPacketSizes(t *testing.T) {
	g, err := New(Config{K: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range g.Batch(100) {
		if p.SizeBytes != 40 {
			t.Fatalf("default packet size %d, want 40 (paper minimum)", p.SizeBytes)
		}
	}
	g, err = New(Config{K: 1, Seed: 4, MinBytes: 40, MaxBytes: 1500})
	if err != nil {
		t.Fatal(err)
	}
	sawBig := false
	for _, p := range g.Batch(1000) {
		if p.SizeBytes < 40 || p.SizeBytes > 1500 {
			t.Fatalf("packet size %d outside [40,1500]", p.SizeBytes)
		}
		if p.SizeBytes > 700 {
			sawBig = true
		}
	}
	if !sawBig {
		t.Error("no packets above 700 B in a [40,1500] range")
	}
}

func TestRoutedAddrHitsTables(t *testing.T) {
	set, err := rib.GenerateVirtualSet(3, 200, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(Config{K: 3, Seed: 8, Addr: RoutedAddr, Tables: set.Tables})
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]*ip.Table, 3)
	for i, tbl := range set.Tables {
		refs[i] = tbl.Reference()
	}
	for _, p := range g.Batch(2000) {
		if refs[p.VN].Lookup(p.Addr) == ip.NoRoute {
			t.Fatalf("routed address %s (vn %d) missed its table", p.Addr, p.VN)
		}
	}
}

func TestSlotsDutyCycle(t *testing.T) {
	g, err := New(Config{K: 2, Seed: 9, DutyCycle: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	slots := g.Slots(40000)
	busy := 0
	for _, s := range slots {
		if s != nil {
			busy++
		}
	}
	frac := float64(busy) / float64(len(slots))
	if math.Abs(frac-0.25) > 0.02 {
		t.Errorf("duty fraction %.3f, want 0.25 ± 0.02", frac)
	}
}

func TestRequestsMatchPackets(t *testing.T) {
	g, err := New(Config{K: 4, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	reqs := g.Requests(50)
	if len(reqs) != 50 {
		t.Fatalf("got %d requests", len(reqs))
	}
	for _, r := range reqs {
		if r.VN < 0 || r.VN >= 4 {
			t.Fatalf("request VN %d out of range", r.VN)
		}
	}
}

func TestShareEmptyAndOutOfRange(t *testing.T) {
	if s := Share(nil, 3); s[0] != 0 || s[1] != 0 || s[2] != 0 {
		t.Error("Share(nil) not all zero")
	}
	s := Share([]Packet{{VN: 7}}, 3) // out-of-range VN ignored
	for _, v := range s {
		if v != 0 {
			t.Error("out-of-range VN counted")
		}
	}
}
