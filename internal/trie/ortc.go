package trie

import (
	"sort"

	"vrpower/internal/ip"
)

// Compact implements Optimal Route Table Construction (ORTC, Draves et al.,
// INFOCOM 1999): it returns a routing table with the provably minimal number
// of prefixes whose longest-prefix-match behaviour is identical to the
// input's. Fewer prefixes mean fewer trie nodes, fewer BRAM blocks and less
// lookup power, so compaction composes with every scheme the paper models —
// it shrinks M_{i,j} before Eq. 2/4/6 ever see it.
//
// The algorithm is the classic three conceptual passes on the uni-bit trie:
// leaf-push to a full tree, compute candidate next-hop sets bottom-up
// (intersection where possible, union otherwise), then choose next hops
// top-down, emitting a route only where the inherited choice is not in the
// node's candidate set.
func Compact(routes []ip.Route) []ip.Route {
	tr := Build(routes)
	tr.LeafPush()

	sets := make(map[*Node]nhSet)
	buildSets(tr.Root(), sets)

	var out []ip.Route
	emit(tr.Root(), sets, 0, 0, ip.NoRoute, true, &out)
	sort.Slice(out, func(i, j int) bool { return ip.Compare(out[i].Prefix, out[j].Prefix) < 0 })
	return out
}

// nhSet is a small sorted set of next hops (tables use few distinct ports).
type nhSet []ip.NextHop

func (s nhSet) contains(nh ip.NextHop) bool {
	for _, x := range s {
		if x == nh {
			return true
		}
	}
	return false
}

func intersect(a, b nhSet) nhSet {
	var out nhSet
	for _, x := range a {
		if b.contains(x) {
			out = append(out, x)
		}
	}
	return out
}

func union(a, b nhSet) nhSet {
	out := append(nhSet{}, a...)
	for _, x := range b {
		if !out.contains(x) {
			out = append(out, x)
		}
	}
	return out
}

// buildSets computes each node's candidate set bottom-up (ORTC pass 2).
func buildSets(n *Node, sets map[*Node]nhSet) nhSet {
	if n.IsLeaf() {
		s := nhSet{n.NextHop} // NoRoute is a legitimate candidate: "no route here"
		sets[n] = s
		return s
	}
	l := buildSets(n.Child[0], sets)
	r := buildSets(n.Child[1], sets)
	s := intersect(l, r)
	if len(s) == 0 {
		s = union(l, r)
	}
	sets[n] = s
	return s
}

// emit walks top-down (ORTC pass 3): a node emits a route only when the
// inherited choice is not in its candidate set.
func emit(n *Node, sets map[*Node]nhSet, addr uint32, depth int, inherited ip.NextHop, isRoot bool, out *[]ip.Route) {
	s := sets[n]
	chosen := inherited
	if isRoot || !s.contains(inherited) {
		chosen = pick(s)
		if chosen != inherited && chosen != ip.NoRoute {
			p, err := ip.PrefixFrom(ip.Addr(addr), depth)
			if err == nil {
				*out = append(*out, ip.Route{Prefix: p, NextHop: chosen})
			}
		}
	}
	if n.IsLeaf() {
		return
	}
	for b := 0; b < 2; b++ {
		childAddr := addr
		if b == 1 && depth < 32 {
			childAddr |= 1 << (31 - uint(depth))
		}
		emit(n.Child[b], sets, childAddr, depth+1, chosen, false, out)
	}
}

// pick returns the preferred candidate. NoRoute is preferred whenever it is
// in the set: choosing a real next hop above a drop region would later need
// an inexpressible "remove the route here" entry, whereas choosing NoRoute
// only ever requires adding routes below. (Every ancestor of a drop region
// provably carries NoRoute in its candidate set, so this preference keeps
// the classic ORTC equivalence with plain prefix tables.) Among real next
// hops the smallest wins, for determinism.
func pick(s nhSet) ip.NextHop {
	if s.contains(ip.NoRoute) {
		return ip.NoRoute
	}
	best := s[0]
	for _, x := range s[1:] {
		if x < best {
			best = x
		}
	}
	return best
}
