package trie

import (
	"math/rand"
	"testing"

	"vrpower/internal/ip"
)

// oracle builds the exhaustive-scan LPM for a route slice.
func oracle(routes []ip.Route) *ip.Table {
	var t ip.Table
	for _, r := range routes {
		t.Add(r)
	}
	return &t
}

// TestCompactEquivalence is the defining property: the compacted table
// forwards every address exactly like the original.
func TestCompactEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		routes := randomRoutes(400, seed)
		compact := Compact(routes)
		ref, cref := oracle(routes), oracle(compact)
		rng := rand.New(rand.NewSource(seed * 100))
		for i := 0; i < 5000; i++ {
			addr := ip.Addr(rng.Uint32())
			if a, b := ref.Lookup(addr), cref.Lookup(addr); a != b {
				t.Fatalf("seed %d: Lookup(%s) = %d original vs %d compacted", seed, addr, a, b)
			}
		}
		// Probe boundaries of every original route too.
		for _, r := range routes {
			for _, addr := range []ip.Addr{r.Prefix.Addr, r.Prefix.Addr | ^ip.Mask(r.Prefix.Len)} {
				if a, b := ref.Lookup(addr), cref.Lookup(addr); a != b {
					t.Fatalf("seed %d: boundary %s: %d vs %d", seed, addr, a, b)
				}
			}
		}
	}
}

// TestCompactNeverGrows: ORTC output is minimal, so never larger than input
// (after the input's own duplicates are removed by the trie).
func TestCompactNeverGrows(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		routes := randomRoutes(500, seed+10)
		if got := len(Compact(routes)); got > len(routes) {
			t.Errorf("seed %d: compacted %d routes from %d", seed, got, len(routes))
		}
	}
}

// TestCompactCollapsesSiblings: two sibling prefixes with the same next hop
// compact to their parent.
func TestCompactCollapsesSiblings(t *testing.T) {
	routes := []ip.Route{
		{Prefix: ip.MustPrefix(ip.AddrFrom4(10, 0, 0, 0), 9), NextHop: 1},
		{Prefix: ip.MustPrefix(ip.AddrFrom4(10, 128, 0, 0), 9), NextHop: 1},
	}
	compact := Compact(routes)
	if len(compact) != 1 {
		t.Fatalf("compacted to %d routes, want 1: %v", len(compact), compact)
	}
	if compact[0].Prefix.String() != "10.0.0.0/8" || compact[0].NextHop != 1 {
		t.Errorf("compacted route = %v, want 10.0.0.0/8 -> 1", compact[0])
	}
}

// TestCompactRemovesRedundantSpecific: a more-specific route with the same
// next hop as its covering route is dropped.
func TestCompactRemovesRedundantSpecific(t *testing.T) {
	routes := []ip.Route{
		{Prefix: ip.MustPrefix(ip.AddrFrom4(10, 0, 0, 0), 8), NextHop: 3},
		{Prefix: ip.MustPrefix(ip.AddrFrom4(10, 1, 0, 0), 16), NextHop: 3},
		{Prefix: ip.MustPrefix(ip.AddrFrom4(10, 2, 0, 0), 16), NextHop: 4},
	}
	compact := Compact(routes)
	if len(compact) != 2 {
		t.Fatalf("compacted to %d routes, want 2: %v", len(compact), compact)
	}
}

// TestCompactDropRegionStaysDropped: the NoRoute-preferring choice must not
// leak a covering route over an uncovered region.
func TestCompactDropRegionStaysDropped(t *testing.T) {
	routes := []ip.Route{
		{Prefix: ip.MustPrefix(0, 1), NextHop: 1}, // 0.0.0.0/1 only
	}
	compact := Compact(routes)
	cref := oracle(compact)
	if nh := cref.Lookup(ip.AddrFrom4(200, 0, 0, 1)); nh != ip.NoRoute {
		t.Errorf("upper half forwards to %d, want NoRoute", nh)
	}
	if nh := cref.Lookup(ip.AddrFrom4(10, 0, 0, 1)); nh != 1 {
		t.Errorf("lower half forwards to %d, want 1", nh)
	}
}

func TestCompactEmptyAndSingle(t *testing.T) {
	if got := Compact(nil); len(got) != 0 {
		t.Errorf("Compact(nil) = %v", got)
	}
	one := []ip.Route{{Prefix: ip.MustPrefix(ip.AddrFrom4(10, 0, 0, 0), 8), NextHop: 7}}
	got := Compact(one)
	if len(got) != 1 || got[0] != one[0] {
		t.Errorf("Compact(single) = %v", got)
	}
}

// TestCompactIdempotent: compacting a compacted table changes nothing.
func TestCompactIdempotent(t *testing.T) {
	routes := randomRoutes(300, 77)
	once := Compact(routes)
	twice := Compact(once)
	if len(once) != len(twice) {
		t.Fatalf("second compaction changed size %d -> %d", len(once), len(twice))
	}
	for i := range once {
		if once[i] != twice[i] {
			t.Fatalf("route %d changed across compactions", i)
		}
	}
}
