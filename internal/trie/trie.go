// Package trie implements the uni-bit binary trie used by the paper's
// pipelined IP lookup engines (Section V-D): construction from a routing
// table, leaf pushing, longest-prefix-match lookup, incremental updates,
// per-level node statistics, and the level→pipeline-stage mapping.
package trie

import (
	"fmt"

	"vrpower/internal/ip"
)

// Node is one uni-bit trie node. A node may carry a route (HasRoute) and up
// to two children; after leaf pushing only leaves carry routes and every
// internal node has exactly two children.
type Node struct {
	Child    [2]*Node
	HasRoute bool
	NextHop  ip.NextHop
}

// IsLeaf reports whether n has no children.
func (n *Node) IsLeaf() bool { return n.Child[0] == nil && n.Child[1] == nil }

// Trie is a uni-bit binary trie over IPv4 prefixes.
type Trie struct {
	root       *Node
	routes     int
	leafPushed bool
}

// New returns an empty trie containing only the root node.
func New() *Trie {
	return &Trie{root: &Node{}}
}

// Build constructs a trie from all routes of t.
func Build(t []ip.Route) *Trie {
	tr := New()
	for _, r := range t {
		tr.Insert(r.Prefix, r.NextHop)
	}
	return tr
}

// Root exposes the root node for traversals by sibling packages.
func (t *Trie) Root() *Node { return t.root }

// Routes returns the number of routes inserted (and not deleted).
func (t *Trie) Routes() int { return t.routes }

// LeafPushed reports whether LeafPush has been applied.
func (t *Trie) LeafPushed() bool { return t.leafPushed }

// Insert adds or replaces the route for p. Insert on a leaf-pushed trie
// panics: incremental updates must precede leaf pushing (the paper's
// companion work [6] covers on-the-fly updates; this reproduction rebuilds).
func (t *Trie) Insert(p ip.Prefix, nh ip.NextHop) {
	if t.leafPushed {
		panic("trie: Insert on leaf-pushed trie")
	}
	n := t.root
	for i := 0; i < p.Len; i++ {
		b := p.Bit(i)
		if n.Child[b] == nil {
			n.Child[b] = &Node{}
		}
		n = n.Child[b]
	}
	if !n.HasRoute {
		t.routes++
	}
	n.HasRoute = true
	n.NextHop = nh
}

// Delete removes the route for p, pruning now-empty branches, and reports
// whether the route existed.
func (t *Trie) Delete(p ip.Prefix) bool {
	if t.leafPushed {
		panic("trie: Delete on leaf-pushed trie")
	}
	// Record the path so we can prune bottom-up.
	path := make([]*Node, 0, p.Len+1)
	n := t.root
	path = append(path, n)
	for i := 0; i < p.Len; i++ {
		n = n.Child[p.Bit(i)]
		if n == nil {
			return false
		}
		path = append(path, n)
	}
	if !n.HasRoute {
		return false
	}
	n.HasRoute = false
	t.routes--
	for i := len(path) - 1; i > 0; i-- {
		node := path[i]
		if node.HasRoute || !node.IsLeaf() {
			break
		}
		path[i-1].Child[p.Bit(i-1)] = nil
	}
	return true
}

// Lookup performs longest-prefix match on addr. It handles both plain and
// leaf-pushed tries: in a plain trie it tracks the deepest route on the
// walk; in a leaf-pushed trie the walk ends at a leaf holding the answer.
func (t *Trie) Lookup(addr ip.Addr) ip.NextHop {
	best := ip.NoRoute
	n := t.root
	for i := 0; n != nil; i++ {
		if n.HasRoute {
			best = n.NextHop
		}
		if i == 32 {
			break
		}
		n = n.Child[addr.Bit(i)]
	}
	return best
}

// LeafPush converts t into leaf-pushed form (Section V-D, [16]): inherited
// next hops are pushed down so that only leaf nodes carry forwarding
// information and every internal node has exactly two children. Lookups then
// resolve at the leaf reached by the address walk.
func (t *Trie) LeafPush() {
	if t.leafPushed {
		return
	}
	push(t.root, ip.NoRoute)
	t.leafPushed = true
}

func push(n *Node, inherited ip.NextHop) {
	if n.HasRoute {
		inherited = n.NextHop
	}
	if n.IsLeaf() {
		// Leaves keep (or gain) the inherited next hop. A leaf with
		// inherited == NoRoute is a genuine miss leaf.
		n.HasRoute = inherited != ip.NoRoute
		n.NextHop = inherited
		return
	}
	for b := 0; b < 2; b++ {
		if n.Child[b] == nil {
			n.Child[b] = &Node{}
		}
		push(n.Child[b], inherited)
	}
	// Internal nodes carry no forwarding information after pushing.
	n.HasRoute = false
	n.NextHop = ip.NoRoute
}

// Stats summarises trie shape. Levels are node levels: the root is level 0,
// so a trie over /32 prefixes has levels 0..32.
type Stats struct {
	Nodes    int
	Leaves   int
	Internal int
	Height   int // deepest populated node level
	PerLevel []Level
}

// Level holds per-level node counts.
type Level struct {
	Nodes    int
	Leaves   int
	Internal int
}

// Stats walks the trie and returns its shape statistics.
func (t *Trie) Stats() Stats {
	s := Stats{PerLevel: make([]Level, 33)}
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		s.Nodes++
		if depth > s.Height {
			s.Height = depth
		}
		lv := &s.PerLevel[depth]
		lv.Nodes++
		if n.IsLeaf() {
			s.Leaves++
			lv.Leaves++
		} else {
			s.Internal++
			lv.Internal++
			for b := 0; b < 2; b++ {
				if n.Child[b] != nil {
					walk(n.Child[b], depth+1)
				}
			}
		}
	}
	walk(t.root, 0)
	s.PerLevel = s.PerLevel[:s.Height+1]
	return s
}

// Walk visits every node in preorder with its level; fn returning false
// stops the walk.
func (t *Trie) Walk(fn func(n *Node, level int) bool) {
	var walk func(n *Node, depth int) bool
	walk = func(n *Node, depth int) bool {
		if !fn(n, depth) {
			return false
		}
		for b := 0; b < 2; b++ {
			if n.Child[b] != nil {
				if !walk(n.Child[b], depth+1) {
					return false
				}
			}
		}
		return true
	}
	walk(t.root, 0)
}

// StageMap maps trie node levels onto the N stages of a linear pipeline.
// The mapping is monotone and contiguous: each stage holds a run of
// consecutive levels, so a packet's walk never moves backwards.
//
// Two constructors exist. NewStageMap folds the shallowest levels into
// stage 0 (they hold few nodes, so stage 0's memory stays small) and maps
// deeper levels one-to-one — the paper's plain level-per-stage layout.
// NewBalancedStageMap instead partitions the levels to minimise the
// largest per-stage memory, the memory-balancing optimisation of the
// paper's references [7] and [8] (Jiang & Prasanna), which reduces the
// widest stage memory and therefore the pipeline's critical path.
type StageMap struct {
	Stages int
	// assign[level] is the stage holding that level.
	assign []int
}

// NewStageMap builds the fold-into-stage-0 mapping of levels 0..height.
func NewStageMap(stages, height int) (StageMap, error) {
	if stages <= 0 {
		return StageMap{}, fmt.Errorf("trie: stage map needs stages > 0, got %d", stages)
	}
	levels := height + 1
	fold := levels - stages
	if fold < 0 {
		fold = 0
	}
	assign := make([]int, levels)
	for lv := 0; lv < levels; lv++ {
		s := lv - fold
		if s < 0 {
			s = 0
		}
		assign[lv] = s
	}
	return StageMap{Stages: stages, assign: assign}, nil
}

// NewBalancedStageMap partitions levels 0..len(levelBits)-1 into at most
// stages contiguous groups minimising the maximum group memory, by dynamic
// programming over prefix sums (O(L²·N), trivial at L ≤ 33).
func NewBalancedStageMap(stages int, levelBits []int64) (StageMap, error) {
	if stages <= 0 {
		return StageMap{}, fmt.Errorf("trie: stage map needs stages > 0, got %d", stages)
	}
	levels := len(levelBits)
	if levels == 0 {
		return StageMap{}, fmt.Errorf("trie: balanced stage map needs at least one level")
	}
	if stages > levels {
		stages = levels // one level per stage at most; trailing stages stay empty
	}
	prefix := make([]int64, levels+1)
	for i, b := range levelBits {
		if b < 0 {
			return StageMap{}, fmt.Errorf("trie: negative level memory at level %d", i)
		}
		prefix[i+1] = prefix[i] + b
	}
	const inf = int64(1) << 62
	// cost[s][l]: minimal max-group over levels [0,l) using s groups.
	cost := make([][]int64, stages+1)
	cut := make([][]int, stages+1)
	for s := range cost {
		cost[s] = make([]int64, levels+1)
		cut[s] = make([]int, levels+1)
		for l := range cost[s] {
			cost[s][l] = inf
		}
	}
	cost[0][0] = 0
	for s := 1; s <= stages; s++ {
		for l := 1; l <= levels; l++ {
			for j := s - 1; j < l; j++ {
				if cost[s-1][j] == inf {
					continue
				}
				group := prefix[l] - prefix[j]
				c := cost[s-1][j]
				if group > c {
					c = group
				}
				if c < cost[s][l] {
					cost[s][l] = c
					cut[s][l] = j
				}
			}
		}
	}
	// Pick the best group count (fewer groups never helps min-max, but
	// allow it for degenerate inputs).
	bestS := stages
	for s := stages; s >= 1; s-- {
		if cost[s][levels] <= cost[bestS][levels] {
			bestS = s
		}
	}
	assign := make([]int, levels)
	l := levels
	for s := bestS; s >= 1; s-- {
		j := cut[s][l]
		for lv := j; lv < l; lv++ {
			assign[lv] = s - 1
		}
		l = j
	}
	return StageMap{Stages: stages, assign: assign}, nil
}

// Stage returns the pipeline stage holding nodes of the given level.
// Levels beyond the mapped range clamp to the last stage.
func (m StageMap) Stage(level int) int {
	if level < 0 {
		return 0
	}
	if level >= len(m.assign) {
		return m.Stages - 1
	}
	return m.assign[level]
}

// Folded returns how many levels share stage 0 beyond the first.
func (m StageMap) Folded() int {
	n := 0
	for _, s := range m.assign {
		if s == 0 {
			n++
		}
	}
	if n > 0 {
		n--
	}
	return n
}

// MaxLevelsPerStage returns the largest number of levels any stage holds.
func (m StageMap) MaxLevelsPerStage() int {
	counts := make([]int, m.Stages)
	max := 0
	for _, s := range m.assign {
		counts[s]++
		if counts[s] > max {
			max = counts[s]
		}
	}
	return max
}
