package trie

import (
	"math/rand"
	"testing"

	"vrpower/internal/ip"
)

func mustPfx(t *testing.T, s string) ip.Prefix {
	t.Helper()
	p, err := ip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestInsertLookupBasic(t *testing.T) {
	tr := New()
	tr.Insert(mustPfx(t, "10.0.0.0/8"), 1)
	tr.Insert(mustPfx(t, "10.1.0.0/16"), 2)
	tr.Insert(mustPfx(t, "0.0.0.0/0"), 9)

	addr, _ := ip.ParseAddr("10.1.5.5")
	if nh := tr.Lookup(addr); nh != 2 {
		t.Errorf("Lookup longest = %d, want 2", nh)
	}
	addr, _ = ip.ParseAddr("10.9.5.5")
	if nh := tr.Lookup(addr); nh != 1 {
		t.Errorf("Lookup mid = %d, want 1", nh)
	}
	addr, _ = ip.ParseAddr("172.16.0.1")
	if nh := tr.Lookup(addr); nh != 9 {
		t.Errorf("Lookup default = %d, want 9", nh)
	}
	if tr.Routes() != 3 {
		t.Errorf("Routes = %d, want 3", tr.Routes())
	}
}

func TestInsertReplace(t *testing.T) {
	tr := New()
	p := mustPfx(t, "10.0.0.0/8")
	tr.Insert(p, 1)
	tr.Insert(p, 5)
	if tr.Routes() != 1 {
		t.Errorf("Routes = %d, want 1 after replace", tr.Routes())
	}
	addr, _ := ip.ParseAddr("10.0.0.1")
	if nh := tr.Lookup(addr); nh != 5 {
		t.Errorf("Lookup = %d, want replaced 5", nh)
	}
}

func TestDeletePrunes(t *testing.T) {
	tr := New()
	tr.Insert(mustPfx(t, "10.1.2.0/24"), 1)
	before := tr.Stats().Nodes
	if before != 25 { // root + 24 path nodes
		t.Fatalf("nodes after insert = %d, want 25", before)
	}
	if !tr.Delete(mustPfx(t, "10.1.2.0/24")) {
		t.Fatal("Delete returned false for existing route")
	}
	if got := tr.Stats().Nodes; got != 1 {
		t.Errorf("nodes after delete = %d, want 1 (root only)", got)
	}
	if tr.Delete(mustPfx(t, "10.1.2.0/24")) {
		t.Error("Delete of absent route returned true")
	}
}

func TestDeleteKeepsSharedPath(t *testing.T) {
	tr := New()
	tr.Insert(mustPfx(t, "10.1.0.0/16"), 1)
	tr.Insert(mustPfx(t, "10.1.2.0/24"), 2)
	tr.Delete(mustPfx(t, "10.1.2.0/24"))
	addr, _ := ip.ParseAddr("10.1.2.3")
	if nh := tr.Lookup(addr); nh != 1 {
		t.Errorf("Lookup after delete = %d, want covering /16 route 1", nh)
	}
	// The /16 node must survive pruning.
	if got := tr.Stats().Nodes; got != 17 {
		t.Errorf("nodes = %d, want 17", got)
	}
}

func TestDeleteNonexistentPath(t *testing.T) {
	tr := New()
	tr.Insert(mustPfx(t, "10.0.0.0/8"), 1)
	if tr.Delete(mustPfx(t, "10.1.0.0/16")) {
		t.Error("Delete along missing path returned true")
	}
}

func TestLeafPushFullBinary(t *testing.T) {
	tbl := randomRoutes(500, 3)
	tr := Build(tbl)
	tr.LeafPush()
	if !tr.LeafPushed() {
		t.Fatal("LeafPushed false after LeafPush")
	}
	s := tr.Stats()
	// Full binary tree invariant: leaves = internal + 1.
	if s.Leaves != s.Internal+1 {
		t.Errorf("leaves = %d, internal = %d; want leaves = internal+1", s.Leaves, s.Internal)
	}
	// No internal node may carry a route after pushing.
	tr.Walk(func(n *Node, _ int) bool {
		if !n.IsLeaf() && n.HasRoute {
			t.Error("internal node carries route after leaf push")
			return false
		}
		return true
	})
}

func TestLeafPushIdempotent(t *testing.T) {
	tr := Build(randomRoutes(100, 11))
	tr.LeafPush()
	n1 := tr.Stats().Nodes
	tr.LeafPush()
	if n2 := tr.Stats().Nodes; n2 != n1 {
		t.Errorf("second LeafPush changed node count %d -> %d", n1, n2)
	}
}

func TestLeafPushPreservesLookups(t *testing.T) {
	routes := randomRoutes(800, 5)
	plain := Build(routes)
	pushed := Build(routes)
	pushed.LeafPush()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		addr := ip.Addr(rng.Uint32())
		if a, b := plain.Lookup(addr), pushed.Lookup(addr); a != b {
			t.Fatalf("Lookup(%s): plain %d != pushed %d", addr, a, b)
		}
	}
}

func TestLookupMatchesReference(t *testing.T) {
	routes := randomRoutes(600, 21)
	tr := Build(routes)
	var ref ip.Table
	for _, r := range routes {
		ref.Add(r)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		addr := ip.Addr(rng.Uint32())
		if got, want := tr.Lookup(addr), ref.Lookup(addr); got != want {
			t.Fatalf("Lookup(%s) = %d, want %d", addr, got, want)
		}
	}
}

func TestInsertOnLeafPushedPanics(t *testing.T) {
	tr := Build(randomRoutes(10, 1))
	tr.LeafPush()
	defer func() {
		if recover() == nil {
			t.Error("Insert on leaf-pushed trie did not panic")
		}
	}()
	tr.Insert(mustPfx(t, "10.0.0.0/8"), 1)
}

func TestStatsPerLevel(t *testing.T) {
	tr := New()
	tr.Insert(mustPfx(t, "128.0.0.0/1"), 1)
	tr.Insert(mustPfx(t, "0.0.0.0/1"), 2)
	s := tr.Stats()
	if s.Nodes != 3 || s.Height != 1 {
		t.Fatalf("Nodes=%d Height=%d, want 3,1", s.Nodes, s.Height)
	}
	if s.PerLevel[0].Internal != 1 || s.PerLevel[1].Leaves != 2 {
		t.Errorf("per-level counts wrong: %+v", s.PerLevel)
	}
	sum := 0
	for _, lv := range s.PerLevel {
		sum += lv.Nodes
	}
	if sum != s.Nodes {
		t.Errorf("per-level sum %d != total %d", sum, s.Nodes)
	}
}

func TestStageMapFolding(t *testing.T) {
	m, err := NewStageMap(28, 32) // 33 levels onto 28 stages
	if err != nil {
		t.Fatal(err)
	}
	if m.Folded() != 5 {
		t.Fatalf("Folded = %d, want 5", m.Folded())
	}
	if m.Stage(0) != 0 || m.Stage(5) != 0 {
		t.Error("shallow levels must fold into stage 0")
	}
	if m.Stage(6) != 1 {
		t.Errorf("Stage(6) = %d, want 1", m.Stage(6))
	}
	if m.Stage(32) != 27 {
		t.Errorf("Stage(32) = %d, want 27", m.Stage(32))
	}
	// Monotone non-decreasing and within range.
	prev := 0
	for lv := 0; lv <= 32; lv++ {
		s := m.Stage(lv)
		if s < prev || s < 0 || s >= 28 {
			t.Fatalf("Stage(%d) = %d not monotone/in-range", lv, s)
		}
		prev = s
	}
}

func TestStageMapNoFoldAndErrors(t *testing.T) {
	m, err := NewStageMap(33, 32)
	if err != nil {
		t.Fatal(err)
	}
	if m.Folded() != 0 {
		t.Errorf("Folded = %d, want 0", m.Folded())
	}
	if m.Stage(10) != 10 {
		t.Errorf("identity mapping broken: Stage(10) = %d", m.Stage(10))
	}
	if _, err := NewStageMap(0, 32); err == nil {
		t.Error("NewStageMap(0, …) succeeded, want error")
	}
}

// randomRoutes builds n unique random routes with non-zero next hops.
func randomRoutes(n int, seed int64) []ip.Route {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[ip.Prefix]bool)
	routes := make([]ip.Route, 0, n)
	for len(routes) < n {
		p := ip.MustPrefix(ip.Addr(rng.Uint32()), 1+rng.Intn(32))
		if seen[p] {
			continue
		}
		seen[p] = true
		routes = append(routes, ip.Route{Prefix: p, NextHop: ip.NextHop(1 + rng.Intn(63))})
	}
	return routes
}

func TestBalancedStageMapMinimisesMax(t *testing.T) {
	// Heavily skewed level memories: linear mapping would leave one huge
	// stage; the balanced map must split the load.
	bits := []int64{1, 1, 1, 1, 100, 100, 100, 100, 1, 1, 1, 1}
	m, err := NewBalancedStageMap(4, bits)
	if err != nil {
		t.Fatal(err)
	}
	// Compute per-stage sums under the balanced assignment.
	sums := make([]int64, m.Stages)
	for lv, b := range bits {
		sums[m.Stage(lv)] += b
	}
	var max int64
	for _, s := range sums {
		if s > max {
			max = s
		}
	}
	// Total 408 over 4 stages: perfect balance 102; the heavy levels force
	// at least one stage to hold a single 100-unit level plus neighbours.
	if max > 104 {
		t.Errorf("balanced max stage load %d, want <= 104 (near-perfect)", max)
	}
	// Monotone contiguous assignment.
	prev := 0
	for lv := range bits {
		s := m.Stage(lv)
		if s < prev || s > prev+1 {
			t.Fatalf("assignment not monotone/contiguous at level %d: %d after %d", lv, s, prev)
		}
		prev = s
	}
}

func TestBalancedStageMapDegenerate(t *testing.T) {
	if _, err := NewBalancedStageMap(0, []int64{1}); err == nil {
		t.Error("stages=0 accepted")
	}
	if _, err := NewBalancedStageMap(4, nil); err == nil {
		t.Error("empty levels accepted")
	}
	if _, err := NewBalancedStageMap(4, []int64{1, -1}); err == nil {
		t.Error("negative level memory accepted")
	}
	// More stages than levels: one level per stage, no panic.
	m, err := NewBalancedStageMap(10, []int64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	for lv := 0; lv < 3; lv++ {
		if s := m.Stage(lv); s != lv {
			t.Errorf("Stage(%d) = %d, want identity", lv, s)
		}
	}
	// All-zero memories still produce a valid map.
	if _, err := NewBalancedStageMap(3, []int64{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
}

func TestBalancedBeatsLinearOnSkew(t *testing.T) {
	// A leaf-pushed trie's level memories: compare the fold-into-0 linear
	// map against the balanced map on max stage load.
	tr := Build(randomRoutes(2000, 31))
	tr.LeafPush()
	st := tr.Stats()
	bits := make([]int64, len(st.PerLevel))
	for lv, l := range st.PerLevel {
		bits[lv] = int64(l.Internal)*36 + int64(l.Leaves)*8
	}
	stages := 8
	linear, err := NewStageMap(stages, st.Height)
	if err != nil {
		t.Fatal(err)
	}
	balanced, err := NewBalancedStageMap(stages, bits)
	if err != nil {
		t.Fatal(err)
	}
	maxLoad := func(m StageMap) int64 {
		sums := make([]int64, stages)
		for lv, b := range bits {
			sums[m.Stage(lv)] += b
		}
		var max int64
		for _, s := range sums {
			if s > max {
				max = s
			}
		}
		return max
	}
	lin, bal := maxLoad(linear), maxLoad(balanced)
	if bal > lin {
		t.Errorf("balanced max load %d exceeds linear %d", bal, lin)
	}
	if bal == lin {
		t.Logf("note: balanced == linear (%d); acceptable but unusual", bal)
	}
	if balanced.MaxLevelsPerStage() < 1 {
		t.Error("MaxLevelsPerStage < 1")
	}
}

// TestRandomOpSequenceVsOracle interleaves inserts, deletes and lookups,
// checking the trie against the exhaustive-scan oracle after every step.
func TestRandomOpSequenceVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	tr := New()
	var oracle ip.Table
	live := make([]ip.Prefix, 0, 256)
	for step := 0; step < 4000; step++ {
		switch op := rng.Intn(10); {
		case op < 5 || len(live) == 0: // insert
			p := ip.MustPrefix(ip.Addr(rng.Uint32()), rng.Intn(33))
			nh := ip.NextHop(1 + rng.Intn(200))
			already := false
			for _, q := range live {
				if q == p {
					already = true
					break
				}
			}
			tr.Insert(p, nh)
			oracle.Add(ip.Route{Prefix: p, NextHop: nh})
			if !already {
				live = append(live, p)
			}
		case op < 8: // delete a live prefix
			i := rng.Intn(len(live))
			p := live[i]
			if !tr.Delete(p) {
				t.Fatalf("step %d: Delete(%s) of live prefix failed", step, p)
			}
			oracle.Remove(p)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		default: // delete something absent
			p := ip.MustPrefix(ip.Addr(rng.Uint32()), 1+rng.Intn(32))
			absent := true
			for _, q := range live {
				if q == p {
					absent = false
					break
				}
			}
			if absent && tr.Delete(p) {
				t.Fatalf("step %d: Delete(%s) of absent prefix succeeded", step, p)
			}
		}
		if tr.Routes() != oracle.Len() {
			t.Fatalf("step %d: route count %d != oracle %d", step, tr.Routes(), oracle.Len())
		}
		if step%7 == 0 {
			addr := ip.Addr(rng.Uint32())
			if got, want := tr.Lookup(addr), oracle.Lookup(addr); got != want {
				t.Fatalf("step %d: Lookup(%s) = %d, want %d", step, addr, got, want)
			}
		}
	}
	// The trie must prune back to just the root when everything is deleted.
	for _, p := range live {
		if !tr.Delete(p) {
			t.Fatalf("final Delete(%s) failed", p)
		}
	}
	if got := tr.Stats().Nodes; got != 1 {
		t.Errorf("after deleting everything: %d nodes, want 1 (root)", got)
	}
}
