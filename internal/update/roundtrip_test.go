package update

// Round-trip property test for the diff/apply pair: for any table a and any
// churn batch, materialising Diff(compile(a), compile(Apply(a, ops))) onto
// the old image must yield the new image exactly — including shrink paths,
// where the diff's clearing writes cover the truncated tail. The write set
// must also be COMPLETE (every untouched position already equal) and
// MINIMAL in range (no write past the larger stage length), or the bubble
// budget would under- or over-charge the data plane.

import (
	"testing"

	"vrpower/internal/pipeline"
)

// materialize plays a write set onto the old image the way the data plane's
// shadow bank does: each write at (stage, index) takes the NEW image's word
// at that position; clearing writes (past the new stage's tail) truncate.
func materialize(t *testing.T, oldImg, newImg *pipeline.Image, writes []Write) *pipeline.Image {
	t.Helper()
	out := oldImg.Clone()
	for s := range out.Stages {
		// Grow to the larger length so in-range writes can land; the final
		// truncation below drops cleared tails.
		if n := len(newImg.Stages[s].Entries); n > len(out.Stages[s].Entries) {
			grown := make([]pipeline.Entry, n)
			copy(grown, out.Stages[s].Entries)
			out.Stages[s].Entries = grown
		}
	}
	for _, w := range writes {
		newE := newImg.Stages[w.Stage].Entries
		if int(w.Index) < len(newE) {
			out.Stages[w.Stage].Entries[w.Index] = newE[w.Index]
		} else {
			// A clearing write: the position exists only in the old image.
			if int(w.Index) >= len(out.Stages[w.Stage].Entries) {
				t.Fatalf("write (%d,%d) past both images", w.Stage, w.Index)
			}
			out.Stages[w.Stage].Entries[w.Index] = pipeline.Entry{}
		}
	}
	for s := range out.Stages {
		out.Stages[s].Entries = out.Stages[s].Entries[:len(newImg.Stages[s].Entries)]
	}
	return out
}

// assertImagesEqual compares two images entry-for-entry.
func assertImagesEqual(t *testing.T, got, want *pipeline.Image, label string) {
	t.Helper()
	if len(got.Stages) != len(want.Stages) {
		t.Fatalf("%s: stage counts %d vs %d", label, len(got.Stages), len(want.Stages))
	}
	for s := range want.Stages {
		g, w := got.Stages[s].Entries, want.Stages[s].Entries
		if len(g) != len(w) {
			t.Fatalf("%s: stage %d lengths %d vs %d", label, s, len(g), len(w))
		}
		for i := range w {
			if !entryEqual(g[i], w[i]) {
				t.Fatalf("%s: stage %d entry %d differs: %+v vs %+v", label, s, i, g[i], w[i])
			}
		}
	}
}

// TestDiffApplyRoundTripProperty: across seeds and op mixes — including a
// withdraw-heavy mix that shrinks stages — apply(diff(a,b)) onto a is b.
func TestDiffApplyRoundTripProperty(t *testing.T) {
	mixes := []struct {
		name   string
		cfg    ChurnConfig
		nRoute int
		nOps   int
	}{
		{"default-mix", ChurnConfig{}, 300, 120},
		{"announce-heavy", ChurnConfig{AnnounceFrac: 0.8, WithdrawFrac: 0.1}, 200, 150},
		{"withdraw-heavy-shrink", ChurnConfig{AnnounceFrac: 0.05, WithdrawFrac: 0.9}, 400, 250},
		{"change-only", ChurnConfig{AnnounceFrac: 0.001, WithdrawFrac: 0.001}, 150, 80},
	}
	for _, mix := range mixes {
		t.Run(mix.name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				tbl := genTable(t, mix.nRoute, seed)
				cfg := mix.cfg
				cfg.Seed = seed * 101
				ops, err := Churn(tbl, mix.nOps, cfg)
				if err != nil {
					t.Fatal(err)
				}
				after := Apply(tbl, ops)
				oldImg, newImg := compile(t, tbl), compile(t, after)
				writes, err := Diff(oldImg, newImg)
				if err != nil {
					t.Fatal(err)
				}

				// Round trip: the writes transform old into new exactly.
				got := materialize(t, oldImg, newImg, writes)
				assertImagesEqual(t, got, newImg, "materialized")

				// Completeness: every position NOT in the write set must
				// already be equal across the shared range.
				written := map[Write]bool{}
				for _, w := range writes {
					if written[w] {
						t.Fatalf("duplicate write (%d,%d)", w.Stage, w.Index)
					}
					written[w] = true
				}
				for s := range newImg.Stages {
					oldE, newE := oldImg.Stages[s].Entries, newImg.Stages[s].Entries
					n := len(oldE)
					if len(newE) < n {
						n = len(newE)
					}
					for i := 0; i < n; i++ {
						if !written[Write{Stage: s, Index: uint32(i)}] && !entryEqual(oldE[i], newE[i]) {
							t.Fatalf("seed %d: differing entry (%d,%d) not in write set", seed, s, i)
						}
					}
				}

				// The bubble budget must cover the widest stage's writes.
				if b := Bubbles(writes); len(writes) > 0 && b < 1 {
					t.Fatalf("non-empty write set with %d bubbles", b)
				}

				// Coalescing must not change the resulting table (ops to one
				// prefix supersede in order), so the same round trip holds.
				coalesced := Coalesce(ops)
				afterC := Apply(tbl, coalesced)
				imgC := compile(t, afterC)
				assertImagesEqual(t, imgC, newImg, "coalesced")
			}
		})
	}
}

// TestDiffShrinkRoundTripToEmptyStages: withdrawing down to a single route
// exercises the deepest shrink path — most stages truncate to (near) empty
// and the diff must still round-trip.
func TestDiffShrinkRoundTripToEmptyStages(t *testing.T) {
	tbl := genTable(t, 120, 9)
	var ops []Op
	for _, r := range tbl.Routes[1:] {
		ops = append(ops, Op{Kind: Withdraw, Prefix: r.Prefix})
	}
	after := Apply(tbl, ops)
	if after.Len() != 1 {
		t.Fatalf("table has %d routes after mass withdraw, want 1", after.Len())
	}
	oldImg, newImg := compile(t, tbl), compile(t, after)
	writes, err := Diff(oldImg, newImg)
	if err != nil {
		t.Fatal(err)
	}
	got := materialize(t, oldImg, newImg, writes)
	assertImagesEqual(t, got, newImg, "mass-withdraw")
}
