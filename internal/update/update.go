// Package update models routing-table churn and its cost on pipelined
// lookup engines. The paper's companion work ([6]: "Towards on-the-fly
// incremental updates for virtualized routers on FPGA", the same authors)
// applies updates by injecting *write bubbles* into the pipeline: a bubble
// occupies one input cycle and performs one memory write in each stage it
// traverses, so lookups stall for one cycle per bubble. This package
// generates deterministic churn streams, diffs compiled pipeline images to
// count the writes an update batch needs, converts writes to bubbles, and
// reports the throughput retained — quantifying the separate scheme's
// update advantage over the merged scheme (one table touched vs the whole
// merged structure).
package update

import (
	"fmt"
	"math/rand"

	"vrpower/internal/ip"
	"vrpower/internal/pipeline"
	"vrpower/internal/rib"
)

// OpKind is the BGP-style update type.
type OpKind int

const (
	// Announce adds a new route.
	Announce OpKind = iota
	// Withdraw removes an existing route.
	Withdraw
	// Change rewrites an existing route's next hop.
	Change
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case Announce:
		return "announce"
	case Withdraw:
		return "withdraw"
	case Change:
		return "change"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one route update.
type Op struct {
	Kind    OpKind
	Prefix  ip.Prefix
	NextHop ip.NextHop // Announce/Change only
}

// ChurnConfig parameterises the update generator.
type ChurnConfig struct {
	Seed int64
	// AnnounceFrac, WithdrawFrac select the op mix; the remainder is
	// next-hop changes. Defaults (zero values) give the BGP-typical
	// 40/30/30 mix.
	AnnounceFrac, WithdrawFrac float64
}

// Churn generates n updates against the table, mutating its own shadow copy
// so withdraws always name live routes. The input table is not modified.
func Churn(tbl *rib.Table, n int, cfg ChurnConfig) ([]Op, error) {
	if tbl.Len() == 0 {
		return nil, fmt.Errorf("update: churn against an empty table")
	}
	af, wf := cfg.AnnounceFrac, cfg.WithdrawFrac
	if af == 0 && wf == 0 {
		af, wf = 0.4, 0.3
	}
	if af < 0 || wf < 0 || af+wf > 1 {
		return nil, fmt.Errorf("update: bad op mix announce=%g withdraw=%g", af, wf)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// The shadow is a plain route slice plus a prefix-membership map, so
	// every op is O(1): announces append (the map already proved the prefix
	// absent), withdraws swap-remove by index. Going through rib.Table.Add
	// here would linear-scan per op — quadratic over a large batch.
	routes := make([]ip.Route, tbl.Len())
	copy(routes, tbl.Routes)
	present := make(map[ip.Prefix]bool, len(routes))
	for _, r := range routes {
		present[r.Prefix] = true
	}

	ops := make([]Op, 0, n)
	for len(ops) < n {
		// The op class is drawn exactly once per emitted op; collisions below
		// re-draw only the prefix, so the realized mix honors af/wf.
		r := rng.Float64()
		switch {
		case r < af:
			// Announce: a more-specific under a random existing route. A
			// duplicate draw re-draws the prefix, not the op class; the retry
			// cap only trips when the more-specific space under every base is
			// saturated, in which case the class is re-drawn.
			for try := 0; try < 100; try++ {
				base := routes[rng.Intn(len(routes))]
				length := base.Prefix.Len + 1 + rng.Intn(3)
				if length > 32 {
					length = 32
				}
				ext := ip.Addr(rng.Uint32()) &^ ip.Mask(base.Prefix.Len)
				p, err := ip.PrefixFrom(base.Prefix.Addr|ext, length)
				if err != nil {
					return nil, err
				}
				if present[p] {
					continue
				}
				nh := ip.NextHop(1 + rng.Intn(16))
				ops = append(ops, Op{Kind: Announce, Prefix: p, NextHop: nh})
				routes = append(routes, ip.Route{Prefix: p, NextHop: nh})
				present[p] = true
				break
			}
		case r < af+wf:
			if len(routes) == 1 {
				// Withdrawing the last route would leave announces with no
				// base; re-draw the op. Only single-route tables hit this.
				continue
			}
			i := rng.Intn(len(routes))
			p := routes[i].Prefix
			ops = append(ops, Op{Kind: Withdraw, Prefix: p})
			routes[i] = routes[len(routes)-1]
			routes = routes[:len(routes)-1]
			delete(present, p)
		default:
			i := rng.Intn(len(routes))
			nh := ip.NextHop(1 + rng.Intn(16))
			ops = append(ops, Op{Kind: Change, Prefix: routes[i].Prefix, NextHop: nh})
			routes[i].NextHop = nh
		}
	}
	return ops, nil
}

// Coalesce collapses a batch so each prefix appears at most once: a later op
// to the same prefix supersedes earlier ones. Ops to distinct prefixes
// commute under Apply, so Apply(tbl, Coalesce(ops)) always equals
// Apply(tbl, ops) — but the coalesced batch diffs (and bubbles) strictly
// less when churn revisits prefixes. The input is not modified.
func Coalesce(ops []Op) []Op {
	if len(ops) <= 1 {
		return append([]Op(nil), ops...)
	}
	last := make(map[ip.Prefix]int, len(ops))
	out := make([]Op, 0, len(ops))
	for _, op := range ops {
		if i, ok := last[op.Prefix]; ok {
			out[i] = op
			continue
		}
		last[op.Prefix] = len(out)
		out = append(out, op)
	}
	return out
}

// Apply returns a new table with the ops applied in order. Withdraws of
// absent prefixes and duplicate announces are tolerated (idempotent). A
// prefix-indexed map makes every op O(1); scanning Routes per op (the way
// rib.Table.Add does) would be O(N·B) over a B-op batch.
func Apply(tbl *rib.Table, ops []Op) *rib.Table {
	out := &rib.Table{Name: tbl.Name}
	out.Routes = append(out.Routes, tbl.Routes...)
	idx := make(map[ip.Prefix]int, len(out.Routes))
	for i, r := range out.Routes {
		idx[r.Prefix] = i
	}
	for _, op := range ops {
		switch op.Kind {
		case Announce, Change:
			if i, ok := idx[op.Prefix]; ok {
				out.Routes[i].NextHop = op.NextHop
			} else {
				idx[op.Prefix] = len(out.Routes)
				out.Routes = append(out.Routes, ip.Route{Prefix: op.Prefix, NextHop: op.NextHop})
			}
		case Withdraw:
			i, ok := idx[op.Prefix]
			if !ok {
				continue
			}
			last := len(out.Routes) - 1
			moved := out.Routes[last]
			out.Routes[i] = moved
			out.Routes = out.Routes[:last]
			idx[moved.Prefix] = i
			delete(idx, op.Prefix)
		}
	}
	out.Sort()
	return out
}

// Write is one stage-memory word write.
type Write struct {
	Stage int
	Index uint32
}

// Diff computes the stage-memory writes that transform the old compiled
// image into the new one: positionally differing entries, appended entries,
// and — when a stage shrinks — clearing writes over the truncated tail, so
// stale entries never linger as reachable garbage and the write-bubble
// budget covers the full update. (Hardware would in practice allocate free
// slots; positional diff is the conservative upper bound.)
func Diff(oldImg, newImg *pipeline.Image) ([]Write, error) {
	if len(oldImg.Stages) != len(newImg.Stages) {
		return nil, fmt.Errorf("update: stage counts differ (%d vs %d)", len(oldImg.Stages), len(newImg.Stages))
	}
	var writes []Write
	for s := range newImg.Stages {
		oldE, newE := oldImg.Stages[s].Entries, newImg.Stages[s].Entries
		n, m := len(oldE), len(newE)
		if m < n {
			n, m = m, n // n = min, m = max
		}
		for i := 0; i < n; i++ {
			if !entryEqual(oldE[i], newE[i]) {
				writes = append(writes, Write{Stage: s, Index: uint32(i)})
			}
		}
		// The tail beyond the shared range: appended entries when the stage
		// grew, clearing writes over the removed range when it shrank.
		for i := n; i < m; i++ {
			writes = append(writes, Write{Stage: s, Index: uint32(i)})
		}
	}
	return writes, nil
}

func entryEqual(a, b pipeline.Entry) bool {
	if a.Leaf != b.Leaf || a.Level != b.Level || a.Child != b.Child || len(a.NHI) != len(b.NHI) {
		return false
	}
	for i := range a.NHI {
		if a.NHI[i] != b.NHI[i] {
			return false
		}
	}
	return true
}

// Bubbles converts a write set into the number of write bubbles needed: a
// bubble performs at most one write per stage as it traverses the pipeline,
// so the bubble count is the largest per-stage write count.
func Bubbles(writes []Write) int {
	perStage := map[int]int{}
	max := 0
	for _, w := range writes {
		perStage[w.Stage]++
		if perStage[w.Stage] > max {
			max = perStage[w.Stage]
		}
	}
	return max
}

// ThroughputRetained returns the fraction of lookup slots left after
// spending bubbles update cycles out of every second at fMHz million
// cycles per second.
func ThroughputRetained(bubblesPerSecond int, fMHz float64) float64 {
	if fMHz <= 0 {
		return 0
	}
	cycles := fMHz * 1e6
	loss := float64(bubblesPerSecond) / cycles
	if loss > 1 {
		return 0
	}
	return 1 - loss
}
