package update

import (
	"fmt"
	"math/rand"
	"testing"

	"vrpower/internal/ip"
	"vrpower/internal/merge"
	"vrpower/internal/pipeline"
	"vrpower/internal/rib"
	"vrpower/internal/trie"
)

func genTable(t *testing.T, n int, seed int64) *rib.Table {
	t.Helper()
	tbl, err := rib.Generate("t", rib.DefaultGen(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func compile(t *testing.T, tbl *rib.Table) *pipeline.Image {
	t.Helper()
	tr := trie.Build(tbl.Routes)
	tr.LeafPush()
	// Fixed 28 stages with a fixed 33-level map so diffs across rebuilds
	// compare like with like even if the new trie is shallower/deeper.
	sm, err := trie.NewStageMap(28, 32)
	if err != nil {
		t.Fatal(err)
	}
	img, err := pipeline.CompileMapped(tr, sm)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestChurnValidation(t *testing.T) {
	if _, err := Churn(&rib.Table{}, 5, ChurnConfig{}); err == nil {
		t.Error("empty table accepted")
	}
	tbl := genTable(t, 50, 1)
	if _, err := Churn(tbl, 5, ChurnConfig{AnnounceFrac: 0.9, WithdrawFrac: 0.9}); err == nil {
		t.Error("op mix > 1 accepted")
	}
	if _, err := Churn(tbl, 5, ChurnConfig{AnnounceFrac: -0.1}); err == nil {
		t.Error("negative mix accepted")
	}
}

func TestChurnDeterministicAndMixed(t *testing.T) {
	tbl := genTable(t, 500, 2)
	a, err := Churn(tbl, 300, ChurnConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Churn(tbl, 300, ChurnConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[OpKind]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs with same seed", i)
		}
		counts[a[i].Kind]++
	}
	for _, k := range []OpKind{Announce, Withdraw, Change} {
		if counts[k] == 0 {
			t.Errorf("no %s ops in a 300-op stream", k)
		}
	}
}

func TestChurnWithdrawsNameLiveRoutes(t *testing.T) {
	tbl := genTable(t, 200, 3)
	ops, err := Churn(tbl, 400, ChurnConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Replay: every withdraw must hit a present prefix.
	present := make(map[ip.Prefix]bool)
	for _, r := range tbl.Routes {
		present[r.Prefix] = true
	}
	for i, op := range ops {
		switch op.Kind {
		case Announce:
			if present[op.Prefix] {
				t.Fatalf("op %d announces already-present %s", i, op.Prefix)
			}
			present[op.Prefix] = true
		case Withdraw:
			if !present[op.Prefix] {
				t.Fatalf("op %d withdraws absent %s", i, op.Prefix)
			}
			delete(present, op.Prefix)
		case Change:
			if !present[op.Prefix] {
				t.Fatalf("op %d changes absent %s", i, op.Prefix)
			}
		}
	}
}

func TestApplySemantics(t *testing.T) {
	tbl := &rib.Table{Name: "t"}
	p1, _ := ip.ParsePrefix("10.0.0.0/8")
	p2, _ := ip.ParsePrefix("20.0.0.0/8")
	tbl.Add(ip.Route{Prefix: p1, NextHop: 1})
	out := Apply(tbl, []Op{
		{Kind: Announce, Prefix: p2, NextHop: 2},
		{Kind: Change, Prefix: p1, NextHop: 5},
		{Kind: Withdraw, Prefix: p2},
		{Kind: Withdraw, Prefix: p2}, // idempotent
	})
	if out.Len() != 1 {
		t.Fatalf("Len = %d, want 1", out.Len())
	}
	if out.Routes[0].Prefix != p1 || out.Routes[0].NextHop != 5 {
		t.Errorf("route = %+v", out.Routes[0])
	}
	// Original untouched.
	if tbl.Routes[0].NextHop != 1 {
		t.Error("Apply mutated the input table")
	}
}

func TestAppliedTableForwardsCorrectly(t *testing.T) {
	tbl := genTable(t, 400, 4)
	ops, err := Churn(tbl, 200, ChurnConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	updated := Apply(tbl, ops)
	img := compile(t, updated)
	ref := updated.Reference()
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 2000; i++ {
		addr := ip.Addr(rng.Uint32())
		if got, want := pipeline.Lookup(img, pipeline.Request{Addr: addr}), ref.Lookup(addr); got != want {
			t.Fatalf("post-update lookup(%s) = %d, want %d", addr, got, want)
		}
	}
}

func TestDiffIdenticalImagesIsEmpty(t *testing.T) {
	tbl := genTable(t, 300, 5)
	a, b := compile(t, tbl), compile(t, tbl)
	writes, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(writes) != 0 {
		t.Errorf("identical images diff to %d writes", len(writes))
	}
}

func TestDiffGrowsWithChurn(t *testing.T) {
	tbl := genTable(t, 500, 6)
	base := compile(t, tbl)
	prev := 0
	for _, n := range []int{10, 100, 400} {
		ops, err := Churn(tbl, n, ChurnConfig{Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		img := compile(t, Apply(tbl, ops))
		writes, err := Diff(base, img)
		if err != nil {
			t.Fatal(err)
		}
		if len(writes) <= prev {
			t.Errorf("%d ops produced %d writes, not above %d", n, len(writes), prev)
		}
		prev = len(writes)
	}
}

func TestDiffStageMismatch(t *testing.T) {
	tbl := genTable(t, 50, 7)
	tr := trie.Build(tbl.Routes)
	tr.LeafPush()
	img8, err := pipeline.Compile(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	img28 := compile(t, tbl)
	if _, err := Diff(img8, img28); err == nil {
		t.Error("stage count mismatch accepted")
	}
}

// TestMergedUpdateCostlier reproduces the core claim of the authors'
// companion work [6]: one network's churn forces far more memory writes in
// the merged structure (shared nodes, K-wide leaf vectors shift) than in
// that network's separate engine.
func TestMergedUpdateCostlier(t *testing.T) {
	set, err := rib.GenerateVirtualSet(4, 400, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := Churn(set.Tables[0], 50, ChurnConfig{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	updated := Apply(set.Tables[0], ops)

	// Separate: only engine 0 changes.
	sepWrites, err := Diff(compile(t, set.Tables[0]), compile(t, updated))
	if err != nil {
		t.Fatal(err)
	}

	// Merged: rebuild the shared structure.
	sm, err := trie.NewStageMap(28, 32)
	if err != nil {
		t.Fatal(err)
	}
	compileMerged := func(tables []*rib.Table) *pipeline.Image {
		m, err := merge.Build(tables)
		if err != nil {
			t.Fatal(err)
		}
		m.LeafPush()
		img, err := pipeline.CompileMergedMapped(m, sm)
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	before := compileMerged(set.Tables)
	after := compileMerged([]*rib.Table{updated, set.Tables[1], set.Tables[2], set.Tables[3]})
	mergedWrites, err := Diff(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if len(mergedWrites) <= len(sepWrites) {
		t.Errorf("merged update writes %d not above separate %d", len(mergedWrites), len(sepWrites))
	}
	if Bubbles(mergedWrites) <= Bubbles(sepWrites) {
		t.Errorf("merged bubbles %d not above separate %d", Bubbles(mergedWrites), Bubbles(sepWrites))
	}
}

func TestBubbles(t *testing.T) {
	if Bubbles(nil) != 0 {
		t.Error("Bubbles(nil) != 0")
	}
	writes := []Write{{0, 1}, {0, 2}, {0, 3}, {5, 1}}
	if got := Bubbles(writes); got != 3 {
		t.Errorf("Bubbles = %d, want 3 (stage 0 has 3 writes)", got)
	}
}

func TestThroughputRetained(t *testing.T) {
	if got := ThroughputRetained(0, 200); got != 1 {
		t.Errorf("no updates: retained %g, want 1", got)
	}
	got := ThroughputRetained(100_000_000, 200) // 100M bubbles at 200 MHz
	if got < 0.49 || got > 0.51 {
		t.Errorf("half-rate bubbles: retained %g, want 0.5", got)
	}
	if ThroughputRetained(1_000_000_000, 200) != 0 {
		t.Error("oversubscribed bubbles should clamp to 0")
	}
	if ThroughputRetained(1, 0) != 0 {
		t.Error("zero clock should return 0")
	}
}

func TestOpKindString(t *testing.T) {
	if Announce.String() != "announce" || Withdraw.String() != "withdraw" || Change.String() != "change" {
		t.Error("op kind names wrong")
	}
}

// TestDiffShrinkEmitsClearingWrites is the regression test for the shrink
// bug: a stage whose new entry list is shorter than the old one must diff to
// clearing writes over the truncated tail, not to silence — otherwise the
// bubble budget undercounts and stale entries are never cleared.
func TestDiffShrinkEmitsClearingWrites(t *testing.T) {
	entry := func(nh ip.NextHop) pipeline.Entry {
		e := pipeline.Entry{Leaf: true, NHI: []ip.NextHop{nh}}
		e.Parity = e.DataParity()
		return e
	}
	oldImg := &pipeline.Image{K: 1, Stages: []pipeline.StageMem{
		{Entries: []pipeline.Entry{entry(1), entry(2), entry(3), entry(4), entry(5)}},
		{Entries: []pipeline.Entry{entry(6)}},
	}}
	newImg := &pipeline.Image{K: 1, Stages: []pipeline.StageMem{
		{Entries: []pipeline.Entry{entry(1), entry(2), entry(9)}},
		{Entries: []pipeline.Entry{entry(6)}},
	}}
	writes, err := Diff(oldImg, newImg)
	if err != nil {
		t.Fatal(err)
	}
	// Index 2 changed; indices 3 and 4 were truncated and must be cleared.
	want := map[Write]bool{{Stage: 0, Index: 2}: true, {Stage: 0, Index: 3}: true, {Stage: 0, Index: 4}: true}
	if len(writes) != len(want) {
		t.Fatalf("shrink diff = %v, want exactly the changed word plus the 2 cleared tail words", writes)
	}
	for _, w := range writes {
		if !want[w] {
			t.Errorf("unexpected write %+v", w)
		}
	}
	if got := Bubbles(writes); got != 3 {
		t.Errorf("shrink bubbles = %d, want 3", got)
	}
}

// TestDiffShrinkOnRealTables exercises the shrink path end-to-end: a batch
// of pure withdrawals shrinks the compiled image, and the diff must still
// produce a non-zero write budget covering the removed entries.
func TestDiffShrinkOnRealTables(t *testing.T) {
	tbl := genTable(t, 400, 21)
	var ops []Op
	for _, r := range tbl.Routes[:200] {
		ops = append(ops, Op{Kind: Withdraw, Prefix: r.Prefix})
	}
	before, after := compile(t, tbl), compile(t, Apply(tbl, ops))
	if after.Words() >= before.Words() {
		t.Fatalf("withdrawing half the table did not shrink the image (%d -> %d words)", before.Words(), after.Words())
	}
	writes, err := Diff(before, after)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for s := range before.Stages {
		oldN, newN := len(before.Stages[s].Entries), len(after.Stages[s].Entries)
		if oldN <= newN {
			continue
		}
		tail := map[uint32]bool{}
		for _, w := range writes {
			if w.Stage == s && int(w.Index) >= newN {
				tail[w.Index] = true
			}
		}
		if len(tail) != oldN-newN {
			t.Errorf("stage %d: %d of %d truncated words cleared", s, len(tail), oldN-newN)
		}
		covered += len(tail)
	}
	if covered == 0 {
		t.Error("no stage shrank positionally; diff shrink path untested")
	}
}

// TestChurnHonorsOpMix pins the op-mix fix: collisions re-draw only the
// prefix, so the realized announce/withdraw/change fractions track the
// configured mix.
func TestChurnHonorsOpMix(t *testing.T) {
	// The table must stay populated for the whole stream: a withdraw-heavy
	// mix shrinks it by (wf-af) routes per op on average, so size it well
	// above ops*(wf-af) or the mix becomes unrealizable mid-stream.
	tbl := genTable(t, 2000, 22)
	for _, tc := range []struct{ af, wf float64 }{{0, 0}, {0.6, 0.2}, {0.2, 0.6}} {
		ops, err := Churn(tbl, 1500, ChurnConfig{Seed: 23, AnnounceFrac: tc.af, WithdrawFrac: tc.wf})
		if err != nil {
			t.Fatal(err)
		}
		counts := map[OpKind]int{}
		for _, op := range ops {
			counts[op.Kind]++
		}
		af, wf := tc.af, tc.wf
		if af == 0 && wf == 0 {
			af, wf = 0.4, 0.3
		}
		n := float64(len(ops))
		for _, c := range []struct {
			kind OpKind
			want float64
		}{{Announce, af}, {Withdraw, wf}, {Change, 1 - af - wf}} {
			got := float64(counts[c.kind]) / n
			if got < c.want-0.03 || got > c.want+0.03 {
				t.Errorf("mix %g/%g: realized %s fraction %.3f, want %.3f +/- 0.03", tc.af, tc.wf, c.kind, got, c.want)
			}
		}
	}
}

// TestCoalesceSupersedes checks last-op-wins semantics and the equivalence
// Apply(tbl, Coalesce(ops)) == Apply(tbl, ops).
func TestCoalesceSupersedes(t *testing.T) {
	p1, _ := ip.ParsePrefix("10.0.0.0/8")
	p2, _ := ip.ParsePrefix("20.0.0.0/8")
	ops := []Op{
		{Kind: Announce, Prefix: p1, NextHop: 1},
		{Kind: Announce, Prefix: p2, NextHop: 2},
		{Kind: Change, Prefix: p1, NextHop: 3},
		{Kind: Withdraw, Prefix: p2},
		{Kind: Withdraw, Prefix: p1},
		{Kind: Announce, Prefix: p1, NextHop: 7},
	}
	co := Coalesce(ops)
	if len(co) != 2 {
		t.Fatalf("coalesced to %d ops, want 2: %v", len(co), co)
	}
	byPrefix := map[ip.Prefix]Op{}
	for _, op := range co {
		byPrefix[op.Prefix] = op
	}
	if op := byPrefix[p1]; op.Kind != Announce || op.NextHop != 7 {
		t.Errorf("p1 coalesced to %+v, want the final announce with hop 7", op)
	}
	if op := byPrefix[p2]; op.Kind != Withdraw {
		t.Errorf("p2 coalesced to %+v, want the final withdraw", op)
	}

	// Property: coalescing never changes the applied result.
	tbl := genTable(t, 300, 24)
	churn, err := Churn(tbl, 1200, ChurnConfig{Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	a, b := Apply(tbl, churn), Apply(tbl, Coalesce(churn))
	if a.Len() != b.Len() {
		t.Fatalf("coalesced apply has %d routes, raw %d", b.Len(), a.Len())
	}
	for i := range a.Routes {
		if a.Routes[i] != b.Routes[i] {
			t.Fatalf("route %d differs: %+v vs %+v", i, a.Routes[i], b.Routes[i])
		}
	}
	if len(Coalesce(nil)) != 0 {
		t.Error("Coalesce(nil) not empty")
	}
}

// TestApplyMatchesLinearScan cross-checks the map-indexed Apply against the
// original linear-scan semantics on a random churn stream.
func TestApplyMatchesLinearScan(t *testing.T) {
	tbl := genTable(t, 300, 26)
	ops, err := Churn(tbl, 900, ChurnConfig{Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the pre-optimisation implementation, verbatim semantics.
	ref := &rib.Table{Name: tbl.Name}
	ref.Routes = append(ref.Routes, tbl.Routes...)
	for _, op := range ops {
		switch op.Kind {
		case Announce, Change:
			ref.Add(ip.Route{Prefix: op.Prefix, NextHop: op.NextHop})
		case Withdraw:
			for i := range ref.Routes {
				if ref.Routes[i].Prefix == op.Prefix {
					ref.Routes[i] = ref.Routes[len(ref.Routes)-1]
					ref.Routes = ref.Routes[:len(ref.Routes)-1]
					break
				}
			}
		}
	}
	ref.Sort()
	got := Apply(tbl, ops)
	if got.Len() != ref.Len() {
		t.Fatalf("Apply has %d routes, linear-scan reference %d", got.Len(), ref.Len())
	}
	for i := range ref.Routes {
		if got.Routes[i] != ref.Routes[i] {
			t.Fatalf("route %d differs: %+v vs %+v", i, got.Routes[i], ref.Routes[i])
		}
	}
}

// BenchmarkApply measures the map-indexed Apply; before the fix this was
// O(N·B) (rib.Table.Add linear-scans per op) and large batches were
// quadratic.
func BenchmarkApply(b *testing.B) {
	for _, size := range []struct{ routes, ops int }{{1000, 1000}, {10000, 10000}} {
		tbl, err := rib.Generate("b", rib.DefaultGen(size.routes, 1))
		if err != nil {
			b.Fatal(err)
		}
		ops, err := Churn(tbl, size.ops, ChurnConfig{Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("routes=%d/ops=%d", size.routes, size.ops), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Apply(tbl, ops)
			}
		})
	}
}

// BenchmarkChurn measures churn generation, whose shadow was the other
// O(N·B) path before the prefix-map rework.
func BenchmarkChurn(b *testing.B) {
	for _, size := range []struct{ routes, ops int }{{1000, 1000}, {10000, 10000}} {
		tbl, err := rib.Generate("b", rib.DefaultGen(size.routes, 1))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("routes=%d/ops=%d", size.routes, size.ops), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Churn(tbl, size.ops, ChurnConfig{Seed: 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
