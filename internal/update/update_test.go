package update

import (
	"math/rand"
	"testing"

	"vrpower/internal/ip"
	"vrpower/internal/merge"
	"vrpower/internal/pipeline"
	"vrpower/internal/rib"
	"vrpower/internal/trie"
)

func genTable(t *testing.T, n int, seed int64) *rib.Table {
	t.Helper()
	tbl, err := rib.Generate("t", rib.DefaultGen(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func compile(t *testing.T, tbl *rib.Table) *pipeline.Image {
	t.Helper()
	tr := trie.Build(tbl.Routes)
	tr.LeafPush()
	// Fixed 28 stages with a fixed 33-level map so diffs across rebuilds
	// compare like with like even if the new trie is shallower/deeper.
	sm, err := trie.NewStageMap(28, 32)
	if err != nil {
		t.Fatal(err)
	}
	img, err := pipeline.CompileMapped(tr, sm)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestChurnValidation(t *testing.T) {
	if _, err := Churn(&rib.Table{}, 5, ChurnConfig{}); err == nil {
		t.Error("empty table accepted")
	}
	tbl := genTable(t, 50, 1)
	if _, err := Churn(tbl, 5, ChurnConfig{AnnounceFrac: 0.9, WithdrawFrac: 0.9}); err == nil {
		t.Error("op mix > 1 accepted")
	}
	if _, err := Churn(tbl, 5, ChurnConfig{AnnounceFrac: -0.1}); err == nil {
		t.Error("negative mix accepted")
	}
}

func TestChurnDeterministicAndMixed(t *testing.T) {
	tbl := genTable(t, 500, 2)
	a, err := Churn(tbl, 300, ChurnConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Churn(tbl, 300, ChurnConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[OpKind]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs with same seed", i)
		}
		counts[a[i].Kind]++
	}
	for _, k := range []OpKind{Announce, Withdraw, Change} {
		if counts[k] == 0 {
			t.Errorf("no %s ops in a 300-op stream", k)
		}
	}
}

func TestChurnWithdrawsNameLiveRoutes(t *testing.T) {
	tbl := genTable(t, 200, 3)
	ops, err := Churn(tbl, 400, ChurnConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Replay: every withdraw must hit a present prefix.
	present := make(map[ip.Prefix]bool)
	for _, r := range tbl.Routes {
		present[r.Prefix] = true
	}
	for i, op := range ops {
		switch op.Kind {
		case Announce:
			if present[op.Prefix] {
				t.Fatalf("op %d announces already-present %s", i, op.Prefix)
			}
			present[op.Prefix] = true
		case Withdraw:
			if !present[op.Prefix] {
				t.Fatalf("op %d withdraws absent %s", i, op.Prefix)
			}
			delete(present, op.Prefix)
		case Change:
			if !present[op.Prefix] {
				t.Fatalf("op %d changes absent %s", i, op.Prefix)
			}
		}
	}
}

func TestApplySemantics(t *testing.T) {
	tbl := &rib.Table{Name: "t"}
	p1, _ := ip.ParsePrefix("10.0.0.0/8")
	p2, _ := ip.ParsePrefix("20.0.0.0/8")
	tbl.Add(ip.Route{Prefix: p1, NextHop: 1})
	out := Apply(tbl, []Op{
		{Kind: Announce, Prefix: p2, NextHop: 2},
		{Kind: Change, Prefix: p1, NextHop: 5},
		{Kind: Withdraw, Prefix: p2},
		{Kind: Withdraw, Prefix: p2}, // idempotent
	})
	if out.Len() != 1 {
		t.Fatalf("Len = %d, want 1", out.Len())
	}
	if out.Routes[0].Prefix != p1 || out.Routes[0].NextHop != 5 {
		t.Errorf("route = %+v", out.Routes[0])
	}
	// Original untouched.
	if tbl.Routes[0].NextHop != 1 {
		t.Error("Apply mutated the input table")
	}
}

func TestAppliedTableForwardsCorrectly(t *testing.T) {
	tbl := genTable(t, 400, 4)
	ops, err := Churn(tbl, 200, ChurnConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	updated := Apply(tbl, ops)
	img := compile(t, updated)
	ref := updated.Reference()
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 2000; i++ {
		addr := ip.Addr(rng.Uint32())
		if got, want := pipeline.Lookup(img, pipeline.Request{Addr: addr}), ref.Lookup(addr); got != want {
			t.Fatalf("post-update lookup(%s) = %d, want %d", addr, got, want)
		}
	}
}

func TestDiffIdenticalImagesIsEmpty(t *testing.T) {
	tbl := genTable(t, 300, 5)
	a, b := compile(t, tbl), compile(t, tbl)
	writes, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(writes) != 0 {
		t.Errorf("identical images diff to %d writes", len(writes))
	}
}

func TestDiffGrowsWithChurn(t *testing.T) {
	tbl := genTable(t, 500, 6)
	base := compile(t, tbl)
	prev := 0
	for _, n := range []int{10, 100, 400} {
		ops, err := Churn(tbl, n, ChurnConfig{Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		img := compile(t, Apply(tbl, ops))
		writes, err := Diff(base, img)
		if err != nil {
			t.Fatal(err)
		}
		if len(writes) <= prev {
			t.Errorf("%d ops produced %d writes, not above %d", n, len(writes), prev)
		}
		prev = len(writes)
	}
}

func TestDiffStageMismatch(t *testing.T) {
	tbl := genTable(t, 50, 7)
	tr := trie.Build(tbl.Routes)
	tr.LeafPush()
	img8, err := pipeline.Compile(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	img28 := compile(t, tbl)
	if _, err := Diff(img8, img28); err == nil {
		t.Error("stage count mismatch accepted")
	}
}

// TestMergedUpdateCostlier reproduces the core claim of the authors'
// companion work [6]: one network's churn forces far more memory writes in
// the merged structure (shared nodes, K-wide leaf vectors shift) than in
// that network's separate engine.
func TestMergedUpdateCostlier(t *testing.T) {
	set, err := rib.GenerateVirtualSet(4, 400, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := Churn(set.Tables[0], 50, ChurnConfig{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	updated := Apply(set.Tables[0], ops)

	// Separate: only engine 0 changes.
	sepWrites, err := Diff(compile(t, set.Tables[0]), compile(t, updated))
	if err != nil {
		t.Fatal(err)
	}

	// Merged: rebuild the shared structure.
	sm, err := trie.NewStageMap(28, 32)
	if err != nil {
		t.Fatal(err)
	}
	compileMerged := func(tables []*rib.Table) *pipeline.Image {
		m, err := merge.Build(tables)
		if err != nil {
			t.Fatal(err)
		}
		m.LeafPush()
		img, err := pipeline.CompileMergedMapped(m, sm)
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	before := compileMerged(set.Tables)
	after := compileMerged([]*rib.Table{updated, set.Tables[1], set.Tables[2], set.Tables[3]})
	mergedWrites, err := Diff(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if len(mergedWrites) <= len(sepWrites) {
		t.Errorf("merged update writes %d not above separate %d", len(mergedWrites), len(sepWrites))
	}
	if Bubbles(mergedWrites) <= Bubbles(sepWrites) {
		t.Errorf("merged bubbles %d not above separate %d", Bubbles(mergedWrites), Bubbles(sepWrites))
	}
}

func TestBubbles(t *testing.T) {
	if Bubbles(nil) != 0 {
		t.Error("Bubbles(nil) != 0")
	}
	writes := []Write{{0, 1}, {0, 2}, {0, 3}, {5, 1}}
	if got := Bubbles(writes); got != 3 {
		t.Errorf("Bubbles = %d, want 3 (stage 0 has 3 writes)", got)
	}
}

func TestThroughputRetained(t *testing.T) {
	if got := ThroughputRetained(0, 200); got != 1 {
		t.Errorf("no updates: retained %g, want 1", got)
	}
	got := ThroughputRetained(100_000_000, 200) // 100M bubbles at 200 MHz
	if got < 0.49 || got > 0.51 {
		t.Errorf("half-rate bubbles: retained %g, want 0.5", got)
	}
	if ThroughputRetained(1_000_000_000, 200) != 0 {
		t.Error("oversubscribed bubbles should clamp to 0")
	}
	if ThroughputRetained(1, 0) != 0 {
		t.Error("zero clock should return 0")
	}
}

func TestOpKindString(t *testing.T) {
	if Announce.String() != "announce" || Withdraw.String() != "withdraw" || Change.String() != "change" {
		t.Error("op kind names wrong")
	}
}
