package vrpower_test

import (
	"math"
	"strconv"
	"testing"
)

// TestItoa pins the bench harness's allocation-light formatter against
// strconv for zero, positive, and negative inputs. The negative cases matter:
// the original implementation looped forever on them, and math.MinInt has no
// positive counterpart so the formatter must work in negatives throughout.
func TestItoa(t *testing.T) {
	cases := []int{
		0, 1, 7, 9, 10, 42, 99, 100, 1024, 999999, math.MaxInt,
		-1, -7, -10, -42, -100, -987654, math.MinInt + 1, math.MinInt,
	}
	for _, n := range cases {
		if got, want := itoa(n), strconv.Itoa(n); got != want {
			t.Errorf("itoa(%d) = %q, want %q", n, got, want)
		}
	}
}
