// Soak tests: larger-scale end-to-end runs, skipped under -short. They
// exercise the system at core-router scale and long traffic streams, where
// allocation and indexing bugs that small tests miss tend to surface.
package vrpower_test

import (
	"testing"

	"vrpower"
)

func TestSoakCoreScaleTable(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// 50k routes: build, compact, merge with a second table, compile, and
	// forward a long stream without a single oracle mismatch.
	tbl, err := vrpower.Generate("core", vrpower.DefaultGen(50000, 1))
	if err != nil {
		t.Fatal(err)
	}
	compact := vrpower.CompactTable(tbl)
	if compact.Len() >= tbl.Len() {
		t.Errorf("compaction did not shrink: %d -> %d", tbl.Len(), compact.Len())
	}
	ref := tbl.Reference()
	cref := compact.Reference()
	gen, err := vrpower.NewTraffic(vrpower.TrafficConfig{
		K: 1, Seed: 2, Addr: vrpower.RoutedAddr, Tables: []*vrpower.Table{tbl},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range gen.Batch(5000) {
		if a, b := ref.Lookup(p.Addr), cref.Lookup(p.Addr); a != b {
			t.Fatalf("compaction broke forwarding at %s: %d vs %d", p.Addr, a, b)
		}
	}

	r, err := vrpower.Build(vrpower.Config{Scheme: vrpower.VS, K: 1, ClockGating: true},
		[]*vrpower.Table{tbl})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := vrpower.NewForwarding(r, []*vrpower.Table{tbl})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Forward(gen.Batch(50000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatches != 0 {
		t.Errorf("%d mismatches at core scale", rep.Mismatches)
	}
}

func TestSoakMergedManyNetworks(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// 24 merged networks, well past the paper's VS ceiling.
	const k = 24
	set, err := vrpower.GenerateVirtualSet(k, 2000, 0.6, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := vrpower.Build(vrpower.Config{Scheme: vrpower.VM, K: k, ClockGating: true}, set.Tables)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := vrpower.NewForwarding(r, set.Tables)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := vrpower.NewTraffic(vrpower.TrafficConfig{
		K: k, Seed: 4, Addr: vrpower.RoutedAddr, Tables: set.Tables,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Forward(gen.Batch(60000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatches != 0 {
		t.Errorf("%d mismatches across %d merged networks", rep.Mismatches, k)
	}
	b, err := r.ModelPower()
	if err != nil {
		t.Fatal(err)
	}
	if b.Total() < 4.5 || b.Total() > 10 {
		t.Errorf("K=24 merged power %.2f W implausible", b.Total())
	}
}

func TestSoakLongChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// 2000 updates applied through the lifecycle manager without drift
	// between the live tables and the compiled engines.
	tables := func() []*vrpower.Table {
		set, err := vrpower.GenerateVirtualSet(3, 1500, 0.5, 5)
		if err != nil {
			t.Fatal(err)
		}
		return set.Tables
	}()
	mgr, err := vrpower.NewManager(vrpower.Config{Scheme: vrpower.VS, ClockGating: true}, tables)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		ops, err := vrpower.GenerateChurn(mgr.Tables()[round%3], 200, int64(round))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mgr.ApplyUpdates(round%3, ops); err != nil {
			t.Fatal(err)
		}
	}
	live := mgr.Tables()
	sys, err := vrpower.NewForwarding(mgr.Router(), live)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := vrpower.NewTraffic(vrpower.TrafficConfig{
		K: 3, Seed: 6, Addr: vrpower.RoutedAddr, Tables: live,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Forward(gen.Batch(20000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatches != 0 {
		t.Errorf("%d mismatches after sustained churn", rep.Mismatches)
	}
}

func TestSoakFaultInjectionVS(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// A 50k-route separate-scheme router under SEU fire plus an engine
	// kill: healthy VNIDs must never disagree with the oracle, corruption
	// must only ever drop packets (never misforward), and the scrubber must
	// bring every upset and the killed engine back before the run ends.
	const k = 2
	set, err := vrpower.GenerateVirtualSet(k, 25000, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	r, err := vrpower.Build(vrpower.Config{Scheme: vrpower.VS, K: k, ClockGating: true}, set.Tables)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := vrpower.NewForwarding(r, set.Tables)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := vrpower.NewTraffic(vrpower.TrafficConfig{
		K: k, Seed: 8, Addr: vrpower.RoutedAddr, Tables: set.Tables,
	})
	if err != nil {
		t.Fatal(err)
	}
	var bits int64
	for _, img := range r.Images() {
		bits += img.DataBits()
	}
	const cycles = 32 * 1024
	rep, err := sys.RunFaults(gen, cycles, vrpower.FaultRunConfig{
		Inject: vrpower.FaultConfig{
			Seed:             9,
			SEURate:          4 / (float64(bits) * float64(cycles)),
			Kill:             true,
			KillEngine:       1,
			KillCycle:        9000,
			ReconfigFailures: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SEUs) == 0 {
		t.Fatal("no SEUs landed at core scale; rate tuning is off")
	}
	if rep.HealthyMismatches != 0 {
		t.Errorf("%d healthy lookups disagreed with the oracle under faults", rep.HealthyMismatches)
	}
	if got := rep.RepairedSEUs(); got != len(rep.SEUs) {
		t.Errorf("repaired %d of %d SEUs", got, len(rep.SEUs))
	}
	if rep.Kill == nil || rep.Kill.RepairedAt < 0 {
		t.Errorf("killed engine never repaired: %+v", rep.Kill)
	}
	if !rep.Recovered {
		t.Error("router did not fully recover after scrubbing")
	}
	if rep.MTTRCycles() <= 0 {
		t.Errorf("MTTR = %.1f cycles, want > 0", rep.MTTRCycles())
	}
	// Both networks kept forwarding outside their own engines' repair
	// windows (SEUs land on either engine, so neither is fully spared, but
	// the separate scheme never couples one engine's outage to the other's
	// VNID — every drop on a VN traces to its own engine's faults).
	for vn := 0; vn < k; vn++ {
		if rep.DeliveredPerVN[vn] == 0 {
			t.Errorf("VN %d delivered nothing across the fault run", vn)
		}
		if a := rep.Availability(vn); a <= 0 || a > 1 {
			t.Errorf("VN %d availability %.4f outside (0,1]", vn, a)
		}
	}
}
