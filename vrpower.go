// Package vrpower reproduces "FPGA-based Router Virtualization: A Power
// Perspective" (Ganegedara & Prasanna, IEEE IPDPSW 2012) as a software
// system: trie-based pipelined IP lookup engines for non-virtualized,
// virtualized-separate and virtualized-merged routers, a Virtex-6 device and
// timing model, the paper's calibrated power models, and the full benchmark
// harness that regenerates every table and figure of the evaluation.
//
// This file is the public facade: it re-exports the curated API of the
// internal packages so downstream users interact with one import path.
//
// Quick start:
//
//	set, _ := vrpower.GenerateVirtualSet(8, 3725, 0.6, 1)
//	r, _ := vrpower.Build(vrpower.Config{
//		Scheme:      vrpower.VS,
//		K:           8,
//		Grade:       vrpower.Grade2,
//		ClockGating: true,
//	}, set.Tables)
//	model, _ := r.ModelPower()
//	fmt.Printf("%.2f W at %.0f MHz, %.1f Gbps\n",
//		model.Total(), r.Fmax(), r.ThroughputGbps())
package vrpower

import (
	"io"

	"vrpower/internal/core"
	"vrpower/internal/ctrl"
	"vrpower/internal/faults"
	"vrpower/internal/fpga"
	"vrpower/internal/hdl"
	"vrpower/internal/ip"
	"vrpower/internal/merge"
	"vrpower/internal/mtrie"
	"vrpower/internal/multiway"
	"vrpower/internal/netsim"
	"vrpower/internal/packet"
	"vrpower/internal/pipeline"
	"vrpower/internal/planner"
	"vrpower/internal/power"
	"vrpower/internal/rib"
	"vrpower/internal/sched"
	"vrpower/internal/tcam"
	"vrpower/internal/traffic"
	"vrpower/internal/trie"
	"vrpower/internal/update"
)

// Router schemes (Section IV of the paper).
type Scheme = core.Scheme

const (
	// NV is the non-virtualized conventional router: one device per network.
	NV = core.NV
	// VS is the virtualized-separate router: K engines on one device.
	VS = core.VS
	// VM is the virtualized-merged router: one shared engine, merged tables.
	VM = core.VM
)

// Schemes lists NV, VS, VM in paper order.
func Schemes() []Scheme { return core.Schemes() }

// Config parameterises a router build; see core.Config for field docs.
type Config = core.Config

// DefaultStages is the paper's 28-stage pipeline depth.
const DefaultStages = core.DefaultStages

// Router is a built, placed and timed router configuration.
type Router = core.Router

// TableProfile is the per-level trie shape driving analytic builds.
type TableProfile = core.TableProfile

// Build constructs a router from concrete routing tables (compiled lookup
// engines included); BuildAnalytic uses the analytic memory model instead.
func Build(cfg Config, tables []*Table) (*Router, error) { return core.Build(cfg, tables) }

// BuildAnalytic constructs a router from a table profile and a merging
// efficiency α, the fast path behind the figure sweeps.
func BuildAnalytic(cfg Config, prof TableProfile, alpha float64) (*Router, error) {
	return core.BuildAnalytic(cfg, prof, alpha)
}

// ProfileOf extracts the leaf-pushed trie profile of a routing table.
func ProfileOf(tbl *Table) TableProfile { return core.ProfileOf(tbl) }

// PaperProfile returns the profile of the calibrated Potaroo-substitute
// table (3725 prefixes, Section V-E).
func PaperProfile() (TableProfile, error) { return core.PaperProfile() }

// MemoryDemand sizes a scheme's pointer and NHI memory without placing it
// on a device (the Fig. 4 computation).
func MemoryDemand(cfg Config, prof TableProfile, alpha float64) (ptrBits, nhiBits int64, err error) {
	return core.MemoryDemand(cfg, prof, alpha)
}

// Addresses, prefixes and routes.
type (
	// Addr is an IPv4 address.
	Addr = ip.Addr
	// Prefix is a CIDR prefix.
	Prefix = ip.Prefix
	// Route pairs a prefix with its next hop.
	Route = ip.Route
	// NextHop identifies an output port; NoRoute means no match.
	NextHop = ip.NextHop
)

// NoRoute is the NextHop for unmatched addresses.
const NoRoute = ip.NoRoute

// ParseAddr parses dotted-quad notation.
func ParseAddr(s string) (Addr, error) { return ip.ParseAddr(s) }

// ParsePrefix parses CIDR notation.
func ParsePrefix(s string) (Prefix, error) { return ip.ParsePrefix(s) }

// Routing tables.
type (
	// Table is one network's routing table.
	Table = rib.Table
	// GenConfig parameterises the synthetic BGP-like generator.
	GenConfig = rib.GenConfig
	// VirtualSet is a set of K per-network tables.
	VirtualSet = rib.VirtualSet
)

// Generate builds a synthetic routing table.
func Generate(name string, c GenConfig) (*Table, error) { return rib.Generate(name, c) }

// DefaultGen returns the generator configuration calibrated to the paper's
// published trie statistics.
func DefaultGen(n int, seed int64) GenConfig { return rib.DefaultGen(n, seed) }

// GenerateVirtualSet builds K same-size tables with share-controlled
// structural overlap (higher share → higher merging efficiency α).
func GenerateVirtualSet(k, prefixes int, share float64, seed int64) (*VirtualSet, error) {
	return rib.GenerateVirtualSet(k, prefixes, share, seed)
}

// ReadTable parses the text serialisation produced by Table.Write.
func ReadTable(name string, r io.Reader) (*Table, error) {
	return rib.Read(name, r)
}

// Tries and merging.
type (
	// Trie is a uni-bit binary trie.
	Trie = trie.Trie
	// MergedTrie overlays K tries with per-VN NHI vectors.
	MergedTrie = merge.Trie
)

// BuildTrie constructs a uni-bit trie from routes.
func BuildTrie(routes []Route) *Trie { return trie.Build(routes) }

// MergeTables overlays K tables into one merged trie.
func MergeTables(tables []*Table) (*MergedTrie, error) { return merge.Build(tables) }

// AnalyticMergedNodes evaluates the node-sharing model
// T = K·m/(1+(K−1)·α).
func AnalyticMergedNodes(k int, m, alpha float64) float64 {
	return merge.AnalyticNodes(k, m, alpha)
}

// FPGA device, grades and timing.
type (
	// Device is an FPGA part's resource inventory.
	Device = fpga.Device
	// SpeedGrade selects the speed/power bin.
	SpeedGrade = fpga.SpeedGrade
	// BRAMMode selects 18 Kb or 36 Kb block packing.
	BRAMMode = fpga.BRAMMode
	// Timing is the post place-and-route frequency model.
	Timing = fpga.Timing
	// Placement is a design fitted onto a device.
	Placement = fpga.Placement
)

const (
	// Grade2 is speed grade -2 (high performance).
	Grade2 = fpga.Grade2
	// Grade1L is speed grade -1L (low power).
	Grade1L = fpga.Grade1L
	// BRAM18Mode packs memories into 18 Kb blocks.
	BRAM18Mode = fpga.BRAM18Mode
	// BRAM36Mode packs memories into 36 Kb blocks.
	BRAM36Mode = fpga.BRAM36Mode
)

// XC6VLX760 returns the paper's Virtex-6 device (Table II).
func XC6VLX760() Device { return fpga.XC6VLX760() }

// Grades lists both evaluated speed grades.
func Grades() []SpeedGrade { return fpga.Grades() }

// DefaultTiming returns the calibrated timing model.
func DefaultTiming() Timing { return fpga.DefaultTiming() }

// ThroughputGbps converts a clock (MHz) and engine count to worst-case
// 40-byte-packet bandwidth.
func ThroughputGbps(fMHz float64, engines int) float64 {
	return fpga.ThroughputGbps(fMHz, engines)
}

// Power models.
type (
	// Breakdown decomposes power into static/logic/memory Watts.
	Breakdown = power.Breakdown
	// SystemDesign is the power-model input.
	SystemDesign = power.SystemDesign
	// EngineDesign describes one pipeline for power estimation.
	EngineDesign = power.EngineDesign
	// Analyzer emulates post place-and-route power measurement.
	Analyzer = power.Analyzer
)

// Estimate evaluates the analytical power models (Eq. 2/4/6).
func Estimate(d SystemDesign) (Breakdown, error) { return power.Estimate(d) }

// NewAnalyzer returns the calibrated "experimental" power source.
func NewAnalyzer() *Analyzer { return power.NewAnalyzer() }

// StaticWatts returns the per-grade leakage power (Section V-A).
func StaticWatts(g SpeedGrade) float64 { return power.StaticWatts(g) }

// BRAMWatts evaluates the Table III BRAM power model.
func BRAMWatts(g SpeedGrade, m BRAMMode, bits int64, fMHz float64) float64 {
	return power.BRAMWatts(g, m, bits, fMHz)
}

// LogicStageWatts returns per-stage logic+signal power (Section V-C).
func LogicStageWatts(g SpeedGrade, fMHz float64) float64 { return power.LogicStageWatts(g, fMHz) }

// MilliwattsPerGbps is the paper's efficiency metric (Fig. 8).
func MilliwattsPerGbps(totalWatts, gbps float64) float64 {
	return power.MilliwattsPerGbps(totalWatts, gbps)
}

// PercentError is the Fig. 7 metric: (model−experimental)/experimental·100.
func PercentError(model, experimental float64) float64 {
	return power.PercentError(model, experimental)
}

// Pipeline simulation.
type (
	// Image is a compiled pipeline memory image.
	Image = pipeline.Image
	// Sim is the cycle-accurate pipeline simulator.
	Sim = pipeline.Sim
	// Request is one lookup (address + VNID).
	Request = pipeline.Request
	// Result is a completed lookup with cycle stamps.
	Result = pipeline.Result
	// MemLayout sizes pointer and NHI entries.
	MemLayout = pipeline.MemLayout
	// BatchSim is the batched, data-oriented lookup engine — scalar-
	// equivalent results at batch-sweep speed.
	BatchSim = pipeline.BatchSim
	// FlatImage is the struct-of-arrays snapshot the batched engine sweeps.
	FlatImage = pipeline.FlatImage
)

// NewSim builds a cycle-accurate simulator over an image.
func NewSim(img *Image) *Sim { return pipeline.NewSim(img) }

// NewBatchSim flattens an image and builds the batched lookup engine over
// the snapshot.
func NewBatchSim(img *Image) *BatchSim { return pipeline.NewBatchSim(img) }

// Flatten builds the struct-of-arrays snapshot of a compiled image.
func Flatten(img *Image) *FlatImage { return pipeline.Flatten(img) }

// RunConcurrent executes a lookup stream with one goroutine per stage.
func RunConcurrent(img *Image, reqs []Request) []Result { return pipeline.RunConcurrent(img, reqs) }

// DefaultLayout matches the paper's 18-bit read width.
func DefaultLayout() MemLayout { return pipeline.DefaultLayout() }

// Traffic generation.
type (
	// Packet is one generated packet.
	Packet = traffic.Packet
	// TrafficConfig parameterises the generator.
	TrafficConfig = traffic.Config
	// TrafficGen produces deterministic packet streams.
	TrafficGen = traffic.Generator
)

// Traffic distributions and address models.
const (
	// Uniform spreads packets evenly over the K networks (Assumption 1).
	Uniform = traffic.Uniform
	// Weighted uses explicit per-VN weights.
	Weighted = traffic.Weighted
	// Zipf skews traffic toward low-numbered VNs.
	Zipf = traffic.Zipf
	// UniformAddr draws addresses uniformly from the IPv4 space.
	UniformAddr = traffic.UniformAddr
	// RoutedAddr draws addresses covered by the VN's table.
	RoutedAddr = traffic.RoutedAddr
)

// NewTraffic builds a packet generator.
func NewTraffic(cfg TrafficConfig) (*TrafficGen, error) { return traffic.New(cfg) }

// End-to-end simulation.
type (
	// ForwardingSystem drives a built router with packets and verifies
	// every result against the reference tables.
	ForwardingSystem = netsim.System
	// ForwardingReport summarises a forwarding run.
	ForwardingReport = netsim.Report
)

// NewForwarding wraps a built router and its tables for simulation.
func NewForwarding(r *Router, tables []*Table) (*ForwardingSystem, error) {
	return netsim.New(r, tables)
}

// Control-plane lifecycle (virtual network add/remove at runtime).
type (
	// Manager hosts a virtualized router and mutates its networks.
	Manager = ctrl.Manager
	// LifecycleEvent records one lifecycle operation and its cost.
	LifecycleEvent = ctrl.Event
)

// NewManager builds the lifecycle manager around an initial network set.
func NewManager(cfg Config, tables []*Table) (*Manager, error) {
	return ctrl.New(cfg, tables)
}

// Routing churn and incremental updates.
type (
	// UpdateOp is one BGP-style route update.
	UpdateOp = update.Op
	// ChurnConfig parameterises the churn generator.
	ChurnConfig = update.ChurnConfig
)

// GenerateChurn produces n deterministic updates against a table.
func GenerateChurn(tbl *Table, n int, seed int64) ([]UpdateOp, error) {
	return update.Churn(tbl, n, update.ChurnConfig{Seed: seed})
}

// ApplyChurn returns a new table with the updates applied.
func ApplyChurn(tbl *Table, ops []UpdateOp) *Table { return update.Apply(tbl, ops) }

// DiffImages counts the stage-memory writes that turn one compiled image
// into another; BubbleCount converts them to pipeline write bubbles.
func DiffImages(oldImg, newImg *Image) ([]update.Write, error) { return update.Diff(oldImg, newImg) }

// BubbleCount returns the write bubbles a write set needs.
func BubbleCount(writes []update.Write) int { return update.Bubbles(writes) }

// Multi-bit tries (controlled prefix expansion).
type MultibitTrie = mtrie.Trie

// BuildMultibit constructs a fixed-stride multi-bit trie (strides 1,2,4,8).
func BuildMultibit(routes []Route, stride int) (*MultibitTrie, error) {
	return mtrie.Build(routes, stride)
}

// TCAM baseline (the related-work comparator).
type (
	// TCAM is the plain full-search ternary match array.
	TCAM = tcam.TCAM
	// PartitionedTCAM is the block-partitioned organisation of [20].
	PartitionedTCAM = tcam.Partitioned
	// TCAMPower converts fired cells into Watts.
	TCAMPower = tcam.PowerModel
)

// BuildTCAM loads a table into a priority-ordered TCAM.
func BuildTCAM(tbl *Table) *TCAM { return tcam.Build(tbl) }

// BuildPartitionedTCAM loads a table into 2^indexBits power-gated blocks.
func BuildPartitionedTCAM(tbl *Table, indexBits int) (*PartitionedTCAM, error) {
	return tcam.BuildPartitioned(tbl, indexBits)
}

// DefaultTCAMPower returns the calibrated TCAM energy coefficients.
func DefaultTCAMPower() TCAMPower { return tcam.DefaultPowerModel() }

// Wire formats (parse/edit around the lookup).
type (
	// Frame is a parsed VLAN-tagged IPv4 frame.
	Frame = packet.Frame
	// MAC is an Ethernet address.
	MAC = packet.MAC
)

// BuildFrame serialises a VLAN-tagged IPv4 frame.
func BuildFrame(dst, src MAC, vnid, priority int, srcIP, dstIP Addr, ttl, payloadLen int) ([]byte, error) {
	return packet.Build(dst, src, vnid, priority, srcIP, dstIP, ttl, payloadLen)
}

// ParseFrame validates and parses a frame.
func ParseFrame(buf []byte) (*Frame, error) { return packet.Parse(buf) }

// Device family and right-sizing.

// DeviceFamily lists the Virtex-6 parts in ascending capacity.
func DeviceFamily() []Device { return fpga.Family() }

// SmallestFit places a design on the smallest family member that hosts it.
func SmallestFit(grade SpeedGrade, used fpga.Resources, stages, maxBlocksPerStage, engines int) (*Placement, error) {
	return fpga.SmallestFit(grade, used, stages, maxBlocksPerStage, engines)
}

// Egress scheduling (the QoS transparency requirement of Section I).
type (
	// Scheduler is a per-VN-queue egress scheduler.
	Scheduler = sched.Scheduler
	// SchedConfig parameterises it.
	SchedConfig = sched.Config
	// SchedStats reports service shares, drops and fairness.
	SchedStats = sched.Stats
	// SchedPacket is one queued egress packet.
	SchedPacket = sched.Packet
)

// Scheduling disciplines.
const (
	// DRR is byte-accurate Deficit Round Robin.
	DRR = sched.DRR
	// RR is packet round robin.
	RR = sched.RR
	// PrioritySched is strict priority by VN index.
	PrioritySched = sched.Priority
)

// NewScheduler builds an egress scheduler.
func NewScheduler(cfg SchedConfig) (*Scheduler, error) { return sched.New(cfg) }

// Multi-way pipelining (reference [7]).
type MultiwayEngine = multiway.Engine

// BuildMultiway partitions a table across 2^b short pipelines.
func BuildMultiway(tbl *Table, ways, stages int) (*MultiwayEngine, error) {
	return multiway.Build(tbl, ways, stages)
}

// Trie braiding (reference [17]) and open-loop load testing.
type (
	// BraidedTrie is the braided merged lookup structure.
	BraidedTrie = merge.BraidedTrie
	// LoadReport summarises an open-loop offered-load run.
	LoadReport = netsim.LoadReport
)

// BraidTables merges K tables with greedy trie braiding: per-node twist
// bits re-orient each network's children to maximise node sharing.
func BraidTables(tables []*Table) (*BraidedTrie, error) { return merge.BuildBraided(tables) }

// Deployment planning.
type (
	// PlanRequirements describes the deployment to plan for.
	PlanRequirements = planner.Requirements
	// PlanCandidate is one feasible configuration with its metrics.
	PlanCandidate = planner.Candidate
)

// Plan enumerates every buildable configuration and returns the feasible
// ones, cheapest measured power first.
func Plan(req PlanRequirements) ([]PlanCandidate, error) { return planner.Plan(req) }

// BestPlan returns the cheapest feasible configuration.
func BestPlan(req PlanRequirements) (PlanCandidate, error) { return planner.Best(req) }

// PlanFrontier returns the power/throughput Pareto frontier of a plan.
func PlanFrontier(cands []PlanCandidate) []PlanCandidate { return planner.Frontier(cands) }

// CompactTable returns the ORTC-minimal table with identical forwarding
// behaviour (fewer routes, fewer trie nodes, less lookup power).
func CompactTable(tbl *Table) *Table {
	return &Table{Name: tbl.Name + "-compact", Routes: trie.Compact(tbl.Routes)}
}

// Fault injection, SEU scrubbing and graceful degradation.
type (
	// FaultConfig parameterises the seeded fault injector (SEU rate per
	// bit-cycle, engine kill, mid-flight reconfiguration failures).
	FaultConfig = faults.Config
	// FaultInjector produces deterministic fault schedules over the
	// engines' compiled images.
	FaultInjector = faults.Injector
	// Upset is one scheduled single-event upset.
	Upset = faults.Upset
	// ScrubPolicy bounds the repair loop (attempts, backoff, write cost).
	ScrubPolicy = ctrl.ScrubPolicy
	// Scrubber rebuilds and reloads corrupted engine images.
	Scrubber = ctrl.Scrubber
	// ScrubResult describes one completed repair.
	ScrubResult = ctrl.ScrubResult
	// ReconfigFailer injects mid-flight reconfiguration failures.
	ReconfigFailer = ctrl.ReconfigFailer
	// FaultRunConfig parameterises an end-to-end fault-injection run.
	FaultRunConfig = netsim.FaultConfig
	// FaultReport summarises a fault-injection run (per-VNID availability,
	// SEU lifecycles, MTTR).
	FaultReport = netsim.FaultReport
	// SEURecord is one injected upset's detect/repair lifecycle.
	SEURecord = netsim.SEURecord
)

// NewFaultInjector builds the deterministic fault injector; equal seeds
// yield byte-identical schedules at any worker count.
func NewFaultInjector(cfg FaultConfig, images []*Image) (*FaultInjector, error) {
	return faults.NewInjector(cfg, images)
}

// NewScrubber builds an SEU scrubber; zero policy fields take defaults and
// failer may be nil (reloads then never fail).
func NewScrubber(pol ScrubPolicy, failer ReconfigFailer) (*Scrubber, error) {
	return ctrl.NewScrubber(pol, failer)
}

// DefaultScrubPolicy returns the bounded-retry defaults.
func DefaultScrubPolicy() ScrubPolicy { return ctrl.DefaultScrubPolicy() }

// RTL backend.
type RTLDesign = hdl.Design

// EmitRTL generates synthesizable Verilog for a compiled pipeline image
// (one level per stage) plus $readmemh memory images and a self-checking
// testbench whose vectors come from the Go simulator.
func EmitRTL(img *Image, layout MemLayout, name string, vectors []Request) (*RTLDesign, error) {
	return hdl.Emit(img, layout, name, vectors)
}
