// Integration tests over the public facade: every deliverable exercised
// end-to-end the way a downstream user would drive it.
package vrpower_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"vrpower"
)

func testTables(t *testing.T, k, n int, share float64, seed int64) []*vrpower.Table {
	t.Helper()
	set, err := vrpower.GenerateVirtualSet(k, n, share, seed)
	if err != nil {
		t.Fatal(err)
	}
	return set.Tables
}

func TestFacadeQuickstartFlow(t *testing.T) {
	tables := testTables(t, 4, 500, 0.5, 1)
	r, err := vrpower.Build(vrpower.Config{
		Scheme: vrpower.VS, K: 4, Grade: vrpower.Grade2, ClockGating: true,
	}, tables)
	if err != nil {
		t.Fatal(err)
	}
	model, err := r.ModelPower()
	if err != nil {
		t.Fatal(err)
	}
	measured, err := r.MeasuredPower(vrpower.NewAnalyzer())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vrpower.PercentError(model.Total(), measured.Total())) > 3 {
		t.Errorf("facade model error %.2f%% outside the paper's ±3%%",
			vrpower.PercentError(model.Total(), measured.Total()))
	}
	if r.ThroughputGbps() <= 0 || r.Fmax() <= 0 {
		t.Error("throughput/fmax not populated")
	}

	gen, err := vrpower.NewTraffic(vrpower.TrafficConfig{
		K: 4, Seed: 2, Addr: vrpower.RoutedAddr, Tables: tables,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := vrpower.NewForwarding(r, tables)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Forward(gen.Batch(2000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatches != 0 {
		t.Errorf("%d forwarding mismatches through the facade", rep.Mismatches)
	}
}

func TestFacadeTableSerialisation(t *testing.T) {
	tbl, err := vrpower.Generate("t", vrpower.DefaultGen(300, 3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := vrpower.ReadTable("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tbl.Len() {
		t.Errorf("round trip %d != %d", back.Len(), tbl.Len())
	}
}

func TestFacadeAnalyticAndMemory(t *testing.T) {
	prof, err := vrpower.PaperProfile()
	if err != nil {
		t.Fatal(err)
	}
	r, err := vrpower.BuildAnalytic(vrpower.Config{
		Scheme: vrpower.VM, K: 8, ClockGating: true,
	}, prof, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r.PointerBits() <= 0 || r.NHIBits() <= 0 {
		t.Error("analytic memory split missing")
	}
	ptr, nhi, err := vrpower.MemoryDemand(vrpower.Config{Scheme: vrpower.VM, K: 8}, prof, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ptr <= 0 || nhi <= 0 {
		t.Error("MemoryDemand returned zeros")
	}
	if got := vrpower.AnalyticMergedNodes(8, 1000, 1); got != 1000 {
		t.Errorf("AnalyticMergedNodes(α=1) = %g, want 1000", got)
	}
}

func TestFacadePowerPrimitives(t *testing.T) {
	if vrpower.StaticWatts(vrpower.Grade2) != 4.5 {
		t.Error("StaticWatts(-2) != 4.5")
	}
	w := vrpower.BRAMWatts(vrpower.Grade2, vrpower.BRAM18Mode, 1, 300)
	if math.Abs(w-13.65*300e-6) > 1e-12 {
		t.Errorf("BRAMWatts = %g", w)
	}
	if vrpower.LogicStageWatts(vrpower.Grade1L, 100) <= 0 {
		t.Error("LogicStageWatts <= 0")
	}
	if vrpower.MilliwattsPerGbps(1, 10) != 100 {
		t.Error("MilliwattsPerGbps wrong")
	}
	if len(vrpower.Grades()) != 2 || len(vrpower.Schemes()) != 3 {
		t.Error("enumerations wrong")
	}
	if vrpower.XC6VLX760().IOPins != 1200 {
		t.Error("device wrong")
	}
	if len(vrpower.DeviceFamily()) != 6 {
		t.Error("device family wrong")
	}
	if vrpower.ThroughputGbps(312.5, 1) != 100 {
		t.Error("throughput conversion wrong")
	}
}

func TestFacadeTrieAndMerge(t *testing.T) {
	tables := testTables(t, 3, 200, 0.6, 4)
	tr := vrpower.BuildTrie(tables[0].Routes)
	ref := tables[0].Reference()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		addr := vrpower.Addr(rng.Uint32())
		if tr.Lookup(addr) != ref.Lookup(addr) {
			t.Fatal("facade trie lookup mismatch")
		}
	}
	m, err := vrpower.MergeTables(tables)
	if err != nil {
		t.Fatal(err)
	}
	if a := m.Stats().Alpha; a <= 0 || a > 1 {
		t.Errorf("merged α = %g", a)
	}
}

func TestFacadeMultibitAndTCAM(t *testing.T) {
	tbl, err := vrpower.Generate("t", vrpower.DefaultGen(400, 6))
	if err != nil {
		t.Fatal(err)
	}
	ref := tbl.Reference()
	mt, err := vrpower.BuildMultibit(tbl.Routes, 4)
	if err != nil {
		t.Fatal(err)
	}
	tc := vrpower.BuildTCAM(tbl)
	pt, err := vrpower.BuildPartitionedTCAM(tbl, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 800; i++ {
		addr := vrpower.Addr(rng.Uint32())
		want := ref.Lookup(addr)
		if mt.Lookup(addr) != want {
			t.Fatal("multibit mismatch")
		}
		if tc.Lookup(addr) != want {
			t.Fatal("TCAM mismatch")
		}
		if pt.Lookup(addr) != want {
			t.Fatal("partitioned TCAM mismatch")
		}
	}
	pm := vrpower.DefaultTCAMPower()
	if pm.DynamicWatts(tc, 150) <= pm.DynamicWatts(pt, 150) {
		t.Error("partitioned TCAM should fire fewer cells")
	}
}

func TestFacadeMultiway(t *testing.T) {
	tbl, err := vrpower.Generate("t", vrpower.DefaultGen(600, 8))
	if err != nil {
		t.Fatal(err)
	}
	e, err := vrpower.BuildMultiway(tbl, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := tbl.Reference()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 800; i++ {
		addr := vrpower.Addr(rng.Uint32())
		if e.Lookup(addr) != ref.Lookup(addr) {
			t.Fatal("multiway mismatch")
		}
	}
}

func TestFacadeLifecycleAndChurn(t *testing.T) {
	tables := testTables(t, 2, 300, 0.5, 10)
	mgr, err := vrpower.NewManager(vrpower.Config{
		Scheme: vrpower.VM, ClockGating: true,
	}, tables)
	if err != nil {
		t.Fatal(err)
	}
	extra, err := vrpower.Generate("extra", vrpower.DefaultGen(300, 11))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := mgr.AddNetwork(extra)
	if err != nil {
		t.Fatal(err)
	}
	if ev.K != 3 {
		t.Errorf("K after add = %d", ev.K)
	}
	ops, err := vrpower.GenerateChurn(mgr.Tables()[0], 20, 12)
	if err != nil {
		t.Fatal(err)
	}
	ev, err = mgr.ApplyUpdates(0, ops)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Writes <= 0 {
		t.Error("update writes missing")
	}
	updated := vrpower.ApplyChurn(tables[0], ops)
	if updated == tables[0] {
		t.Error("ApplyChurn should return a new table")
	}
}

func TestFacadeFramesAndScheduler(t *testing.T) {
	src, _ := vrpower.ParseAddr("10.0.0.1")
	dst, _ := vrpower.ParseAddr("192.168.1.1")
	buf, err := vrpower.BuildFrame(vrpower.MAC{0x02, 0, 0, 0, 0, 1}, vrpower.MAC{0x02, 0, 0, 0, 0, 2},
		5, 0, src, dst, 64, 20)
	if err != nil {
		t.Fatal(err)
	}
	f, err := vrpower.ParseFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.VNID != 5 || f.DstIP != dst {
		t.Errorf("frame fields wrong: %+v", f)
	}

	s, err := vrpower.NewScheduler(vrpower.SchedConfig{K: 2, Discipline: vrpower.DRR})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Enqueue(vrpower.SchedPacket{VN: i % 2, Bytes: 100}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.Drain()); got != 10 {
		t.Errorf("drained %d, want 10", got)
	}
}

func TestFacadeImageDiff(t *testing.T) {
	tbl, err := vrpower.Generate("t", vrpower.DefaultGen(300, 13))
	if err != nil {
		t.Fatal(err)
	}
	build := func(tb *vrpower.Table) *vrpower.Image {
		r, err := vrpower.Build(vrpower.Config{Scheme: vrpower.VS, K: 1, ClockGating: true}, []*vrpower.Table{tb})
		if err != nil {
			t.Fatal(err)
		}
		return r.Images()[0]
	}
	a := build(tbl)
	writes, err := vrpower.DiffImages(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(writes) != 0 || vrpower.BubbleCount(writes) != 0 {
		t.Error("self-diff should be empty")
	}
}

func TestFacadeConcurrentPipeline(t *testing.T) {
	tbl, err := vrpower.Generate("t", vrpower.DefaultGen(300, 14))
	if err != nil {
		t.Fatal(err)
	}
	r, err := vrpower.Build(vrpower.Config{Scheme: vrpower.VS, K: 1, ClockGating: true}, []*vrpower.Table{tbl})
	if err != nil {
		t.Fatal(err)
	}
	img := r.Images()[0]
	reqs := make([]vrpower.Request, 200)
	rng := rand.New(rand.NewSource(15))
	for i := range reqs {
		reqs[i] = vrpower.Request{Addr: vrpower.Addr(rng.Uint32())}
	}
	seq, _, err := vrpower.NewSim(img).Run(reqs, 1)
	if err != nil {
		t.Fatal(err)
	}
	conc := vrpower.RunConcurrent(img, reqs)
	for i := range seq {
		if seq[i].NHI != conc[i].NHI {
			t.Fatal("concurrent facade run mismatch")
		}
	}
}

func TestFacadeBraidingAndLoad(t *testing.T) {
	tables := testTables(t, 3, 250, 0.3, 20)
	bt, err := vrpower.BraidTables(tables)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]*vrpower.Table, 3)
	_ = refs
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 500; i++ {
		addr := vrpower.Addr(rng.Uint32())
		vn := rng.Intn(3)
		if bt.Lookup(vn, addr) != tables[vn].Reference().Lookup(addr) {
			t.Fatal("braided facade lookup mismatch")
		}
	}
	if bt.Stats().Alpha <= 0 {
		t.Error("braided α missing")
	}

	r, err := vrpower.Build(vrpower.Config{Scheme: vrpower.VM, K: 3, ClockGating: true}, tables)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := vrpower.NewForwarding(r, tables)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := vrpower.NewTraffic(vrpower.TrafficConfig{K: 3, Seed: 22, Addr: vrpower.RoutedAddr, Tables: tables})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.LoadTest(gen, 0.1, 5000, 32)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeliveredFraction() < 0.99 {
		t.Errorf("light-load delivered %.3f", rep.DeliveredFraction())
	}
}

func TestFacadePlanner(t *testing.T) {
	prof, err := vrpower.PaperProfile()
	if err != nil {
		t.Fatal(err)
	}
	best, err := vrpower.BestPlan(vrpower.PlanRequirements{
		K: 4, PerVNGbps: 5, Profile: prof, Alpha: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.MeasuredW <= 0 || best.GuaranteedPerVNGbps < 5 {
		t.Errorf("best plan implausible: %+v", best)
	}
	cands, err := vrpower.Plan(vrpower.PlanRequirements{K: 4, PerVNGbps: 5, Profile: prof, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(vrpower.PlanFrontier(cands)) == 0 {
		t.Error("empty frontier")
	}
}

func TestFacadeEmitRTL(t *testing.T) {
	tbl, err := vrpower.Generate("t", vrpower.DefaultGen(150, 30))
	if err != nil {
		t.Fatal(err)
	}
	tr := vrpower.BuildTrie(tbl.Routes)
	tr.LeafPush()
	// One level per stage, the RTL backend's requirement.
	stages := tr.Stats().Height + 1
	r, err := vrpower.Build(vrpower.Config{Scheme: vrpower.VS, K: 1, Stages: stages, ClockGating: true},
		[]*vrpower.Table{tbl})
	if err != nil {
		t.Fatal(err)
	}
	d, err := vrpower.EmitRTL(r.Images()[0], vrpower.DefaultLayout(), "t", []vrpower.Request{{Addr: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Files) < stages {
		t.Errorf("RTL bundle has %d files for %d stages", len(d.Files), stages)
	}
}
